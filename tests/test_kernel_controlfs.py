"""Unit tests for the cgroupfs-style control-file façade."""

import pytest

from repro.kernel.controlfs import ControlFileError, ControlFs, parse_bytes
from repro.psi.tracker import PsiSystem
from repro.psi.types import TaskFlags

from tests.helpers import make_mm

PAGE = 256 * 1024


def make_fs():
    mm = make_mm()
    psi = PsiSystem(ncpu=4)
    mm.create_cgroup("app")
    psi.add_group("app")
    return ControlFs(mm, psi), mm, psi


# ----------------------------------------------------------------------
# byte parsing


def test_parse_bytes_plain():
    assert parse_bytes("4096") == 4096


def test_parse_bytes_suffixes():
    assert parse_bytes("100M") == 100 << 20
    assert parse_bytes("2G") == 2 << 30
    assert parse_bytes("1K") == 1024
    assert parse_bytes("1.5M") == int(1.5 * (1 << 20))


def test_parse_bytes_unit_forms():
    assert parse_bytes("100MB") == 100 << 20
    assert parse_bytes("100MiB") == 100 << 20
    assert parse_bytes("100m") == 100 << 20


def test_parse_bytes_rejects_garbage():
    for bad in ("", "abc", "10X", "-5M"):
        with pytest.raises(ValueError):
            parse_bytes(bad)


# ----------------------------------------------------------------------
# reads


def test_memory_current():
    fs, mm, _ = make_fs()
    mm.alloc_anon("app", 4, now=0.0)
    assert fs.read("app/memory.current", 0.0) == str(4 * PAGE)


def test_memory_max_reads_max_when_unlimited():
    fs, _, _ = make_fs()
    assert fs.read("app/memory.max", 0.0) == "max"


def test_memory_stat_fields():
    fs, mm, _ = make_fs()
    mm.alloc_anon("app", 2, now=0.0)
    stat = dict(
        line.split() for line in fs.read("app/memory.stat", 0.0).splitlines()
    )
    assert int(stat["anon"]) == 2 * PAGE
    assert "workingset_refault" in stat
    assert "pswpout" in stat


def test_pressure_file_format():
    fs, _, _ = make_fs()
    text = fs.read("app/memory.pressure", 0.0)
    assert text.startswith("some avg10=")
    assert "full avg10=" in text


def test_full_slash_paths_accepted():
    fs, mm, _ = make_fs()
    mm.alloc_anon("app", 1, now=0.0)
    assert fs.read("workload.slice/app/memory.current", 0.0) == str(PAGE)


def test_unknown_cgroup_rejected():
    fs, _, _ = make_fs()
    with pytest.raises(ControlFileError):
        fs.read("ghost/memory.current", 0.0)


def test_unknown_file_rejected():
    fs, _, _ = make_fs()
    with pytest.raises(ControlFileError):
        fs.read("app/memory.bogus", 0.0)


# ----------------------------------------------------------------------
# writes


def test_write_memory_max_reclaims():
    fs, mm, _ = make_fs()
    mm.alloc_anon("app", 8, now=0.0)
    fs.write("app/memory.max", str(4 * PAGE), 1.0)
    assert mm.cgroup("app").current_bytes() <= 4 * PAGE
    assert fs.read("app/memory.max", 1.0) == str(4 * PAGE)


def test_write_memory_max_back_to_max():
    fs, mm, _ = make_fs()
    fs.write("app/memory.max", "100M", 0.0)
    fs.write("app/memory.max", "max", 1.0)
    assert mm.cgroup("app").memory_max is None


def test_write_memory_reclaim():
    fs, mm, _ = make_fs()
    mm.alloc_anon("app", 8, now=0.0)
    fs.write("app/memory.reclaim", str(2 * PAGE), 1.0)
    assert mm.cgroup("app").resident_bytes == 6 * PAGE
    assert mm.cgroup("app").memory_max is None  # stateless


def test_memory_reclaim_swappiness_zero_is_file_only():
    fs, mm, _ = make_fs()
    mm.alloc_anon("app", 8, now=0.0)
    mm.register_file("app", 8, now=0.0, resident=True)
    fs.write("app/memory.reclaim", f"{4 * PAGE} swappiness=0", 1.0)
    cg = mm.cgroup("app")
    assert cg.zswap_bytes == 0 and cg.swap_bytes == 0
    assert cg.file_bytes < 8 * PAGE


def test_memory_reclaim_rejects_bad_options():
    fs, mm, _ = make_fs()
    mm.alloc_anon("app", 2, now=0.0)
    with pytest.raises(ControlFileError):
        fs.write("app/memory.reclaim", "1M frobnicate=1", 0.0)
    with pytest.raises(ControlFileError):
        fs.write("app/memory.reclaim", "", 0.0)


def test_read_only_files_reject_writes():
    fs, _, _ = make_fs()
    with pytest.raises(ControlFileError):
        fs.write("app/memory.current", "0", 0.0)


def test_pressure_write_registers_trigger():
    fs, _, psi = make_fs()
    fs.write("app/memory.pressure", "some 150000 1000000", 0.0)
    trigger = fs.trigger("app/memory.pressure")
    assert trigger.spec.stall_threshold_s == pytest.approx(0.15)

    # Drive the group into stall; poll must surface the fired trigger.
    task = psi.add_task("t", "app")
    task.set_flags(TaskFlags.MEMSTALL, 0.0)
    fired = fs.poll(1.0)
    assert fired == ["app/memory.pressure"]


def test_trigger_lookup_without_registration():
    fs, _, _ = make_fs()
    with pytest.raises(ControlFileError):
        fs.trigger("app/memory.pressure")
