"""Unit tests for the project call-graph resolution layer."""

import ast
from pathlib import Path
from textwrap import dedent

from repro.lint.callgraph import (
    ModuleResolver,
    build_call_graph,
    build_project_index,
    module_from_json,
    module_name_for,
    module_to_json,
)

REPO = Path(__file__).resolve().parents[1]


def _index(**modules):
    files = [
        (f"{name}.py", ast.parse(dedent(src)))
        for name, src in modules.items()
    ]
    return build_project_index(files)


A = """
    def helper(x_bytes):
        return x_bytes


    class Recorder:
        def __init__(self, capacity_bytes):
            self.capacity_bytes = capacity_bytes

        def record(self, value):
            return value
"""

B = """
    from a import Recorder, helper


    def use():
        r = Recorder(10)
        r.record(1)
        return helper(2)
"""


def test_module_name_follows_packages():
    assert module_name_for(REPO / "src/repro/sim/host.py") == "repro.sim.host"
    assert module_name_for(REPO / "src/repro/lint/__init__.py") == "repro.lint"
    # benchmarks/ is not a package: the file imports as a bare module.
    assert module_name_for(REPO / "benchmarks/bench_common.py") == "bench_common"
    # The fixture package root sits under a non-package directory.
    assert (
        module_name_for(REPO / "tests/lint_fixtures/flowpkg/convert.py")
        == "flowpkg.convert"
    )


def test_cross_module_calls_resolve():
    edges = build_call_graph(_index(a=A, b=B))
    assert edges["b.use"] == {
        "a.Recorder.__init__",
        "a.Recorder.record",
        "a.helper",
    }


def test_reexport_chain_resolves():
    e = "from a import helper\n"
    f = """
        from e import helper


        def go():
            return helper(1)
    """
    edges = build_call_graph(_index(a=A, e=e, f=f))
    assert "a.helper" in edges["f.go"]


def test_inherited_method_resolves_to_base():
    d = """
        class Base:
            def step(self):
                return 0


        class Child(Base):
            pass


        def drive():
            c = Child()
            return c.step()
    """
    edges = build_call_graph(_index(d=d))
    assert "d.Base.step" in edges["d.drive"]


def test_dataclass_constructor_params_come_from_fields():
    c = """
        from dataclasses import dataclass


        @dataclass
        class Config:
            ram_gb: float
            page_size_bytes: int = 4096
    """
    index = _index(c=c)
    cls = index.modules["c"].classes["Config"]
    assert cls.is_dataclass
    assert cls.constructor_params() == ["ram_gb", "page_size_bytes"]


def test_resolver_walks_dotted_names():
    g = """
        import a


        def go():
            return a.Recorder
    """
    index = _index(a=A, g=g)
    resolver = ModuleResolver(index, index.modules["g"])
    assert resolver.resolve_name("a.helper") == ("func", "a.helper")
    assert resolver.resolve_name("a.Recorder") == ("class", "a.Recorder")
    assert resolver.resolve_name("a.Recorder.record") == (
        "func",
        "a.Recorder.record",
    )
    assert resolver.resolve_name("numpy.random") is None


def test_module_interface_roundtrips_through_json():
    index = _index(a=A)
    original = index.modules["a"]
    rebuilt = module_from_json(module_to_json(original))
    assert rebuilt.tree is None
    assert module_to_json(rebuilt) == module_to_json(original)
    assert rebuilt.classes["Recorder"].constructor_params() == [
        "capacity_bytes"
    ]
