"""End-to-end integration: full hosts under Senpai for extended runs."""

import pytest

from repro.core.fleet import cgroup_memory_savings
from repro.core.senpai import Senpai, SenpaiConfig
from repro.kernel.page import PageKind, PageState
from repro.psi.types import Resource
from repro.workloads.apps import APP_CATALOG
from repro.workloads.base import Workload

from tests.helpers import small_host

MB = 1 << 20


def run_app(app="Feed", backend="zswap", duration=1800.0, seed=42):
    host = small_host(ram_gb=2.0, backend=backend, seed=seed)
    host.add_workload(
        Workload, profile=APP_CATALOG[app], name="app", size_scale=0.04
    )
    host.add_controller(Senpai(SenpaiConfig()))
    host.run(duration)
    return host


def test_senpai_converges_to_meaningful_savings():
    host = run_app()
    stats = cgroup_memory_savings(host.mm, "app")
    # Half an hour of mild pressure on a ~35%-cold app: several
    # percent of savings, nowhere near evicting the working set.
    assert 0.02 < stats["savings_frac"] < 0.5


def test_pressure_stays_mild():
    host = run_app()
    group = host.psi.group("app")
    sample = group.sample(Resource.MEMORY, host.clock.now)
    # Average memory pressure stays within an order of magnitude of
    # the 0.1% target; never runaway thrashing.
    assert sample.some_avg300 < 0.01


def test_accounting_invariants_hold_after_long_run():
    host = run_app()
    mm = host.mm
    cg = mm.cgroup("app")
    pages = host.workload("app").pages
    resident = sum(1 for p in pages if p.state is PageState.RESIDENT)
    zswapped = sum(1 for p in pages if p.state is PageState.ZSWAPPED)
    assert resident * mm.page_size_bytes == cg.resident_bytes
    assert zswapped * mm.page_size_bytes == cg.zswap_bytes
    # LRU lists hold exactly the resident pages.
    on_lru = sum(len(cg.lru[k]) for k in (PageKind.ANON, PageKind.FILE))
    assert on_lru == resident
    # Host capacity is respected.
    assert mm.used_bytes() <= mm.ram_bytes


def test_full_run_is_deterministic():
    a = run_app(seed=7)
    b = run_app(seed=7)
    sa = cgroup_memory_savings(a.mm, "app")
    sb = cgroup_memory_savings(b.mm, "app")
    assert sa == sb
    assert a.psi.group("app").total(Resource.MEMORY, "some") == (
        b.psi.group("app").total(Resource.MEMORY, "some")
    )


def test_ssd_backend_end_to_end():
    host = run_app(app="Ads B", backend="ssd")
    cg = host.mm.cgroup("app")
    stats = cgroup_memory_savings(host.mm, "app")
    assert cg.swap_bytes > 0
    assert cg.zswap_bytes == 0
    assert stats["savings_frac"] > 0.02
    # Endurance accounting accumulated.
    assert host.swap_backend.endurance_bytes_written > 0


def test_restart_under_senpai_recovers():
    host = run_app(duration=600.0)
    host.workload("app").restart(host.clock.now)
    host.run(600.0)
    cg = host.mm.cgroup("app")
    assert cg.resident_bytes > 0
    stats = cgroup_memory_savings(host.mm, "app")
    assert stats["savings_frac"] >= 0.0


def test_proactive_reclaim_cpu_is_negligible():
    """Section 3.4: Senpai-driven reclaim costs ~0.05% of CPU."""
    host = run_app()
    cpu_budget = host.config.ncpu * host.clock.now
    assert host.mm.proactive_cpu_seconds / cpu_budget < 0.005
