"""Controllers racing container death must back off, not crash.

Satellite coverage: Senpai polling killed containers, oomd kill races,
and the public workload-membership API those behaviours rest on.
"""

import pytest

from repro.core.oomd import Oomd, OomdConfig
from repro.core.senpai import Senpai, SenpaiConfig
from repro.sim.host import UnknownWorkloadError
from repro.workloads.access import HeatBands
from repro.workloads.apps import AppProfile
from repro.workloads.base import Workload

from tests.helpers import small_host

MB = 1 << 20
GB = 1 << 30


def _profile(npages=200):
    return AppProfile(
        name="app", size_gb=npages * MB / GB, anon_frac=0.6,
        bands=HeatBands(0.3, 0.1, 0.1), compress_ratio=3.0,
        nthreads=2, cpu_cores=1.0,
    )


# ----------------------------------------------------------------------
# host API


def test_has_workload_reflects_lifecycle():
    host = small_host(ram_gb=1.0)
    assert not host.has_workload("app")
    host.add_workload(Workload, profile=_profile(), name="app")
    assert host.has_workload("app")
    host.kill_workload("app")
    assert not host.has_workload("app")


def test_kill_unknown_workload_raises_documented_error():
    host = small_host(ram_gb=1.0)
    with pytest.raises(UnknownWorkloadError):
        host.kill_workload("ghost")
    # Racing killers can also match on plain KeyError.
    with pytest.raises(KeyError):
        host.kill_workload("ghost")


def test_kill_missing_ok_is_a_noop():
    host = small_host(ram_gb=1.0)
    assert host.kill_workload("ghost", missing_ok=True) == 0


def test_double_kill_raises_then_noops():
    host = small_host(ram_gb=1.0)
    host.add_workload(Workload, profile=_profile(), name="app")
    assert host.kill_workload("app") > 0
    with pytest.raises(UnknownWorkloadError):
        host.kill_workload("app")
    assert host.kill_workload("app", missing_ok=True) == 0


def test_restart_and_spike_on_dead_workload_raise():
    host = small_host(ram_gb=1.0)
    with pytest.raises(UnknownWorkloadError):
        host.restart_workload("ghost")
    with pytest.raises(UnknownWorkloadError):
        host.spike_workload("ghost", 0.1)


# ----------------------------------------------------------------------
# Senpai


def test_senpai_explicit_target_dies_midrun_backs_off():
    """A named (config.cgroups) container that gets killed must not
    crash the controller; errors are counted and backed off."""
    host = small_host(ram_gb=1.0, backend="zswap")
    host.add_workload(Workload, profile=_profile(), name="a")
    host.add_workload(Workload, profile=_profile(), name="b")
    senpai = host.add_controller(Senpai(SenpaiConfig(
        cgroups=("a", "b"),
        reclaim_ratio=0.005, max_step_frac=0.03,
    )))
    host.run(60.0)
    host.kill_workload("a")
    # Killing drops the PSI domain: sampling "a" now raises inside the
    # controller, which must absorb it (the dead cgroup object remains,
    # so some periods may still succeed trivially — the point is no
    # crash and continued control of "b").
    host.run(120.0)
    assert host.has_workload("b")
    reclaims_b = host.metrics.series("b/senpai_reclaim")
    assert len(reclaims_b) > 0


def test_senpai_target_that_never_existed_backs_off():
    host = small_host(ram_gb=1.0, backend="zswap")
    host.add_workload(Workload, profile=_profile(), name="app")
    senpai = host.add_controller(Senpai(SenpaiConfig(
        cgroups=("app", "phantom"),
        reclaim_ratio=0.005, max_step_frac=0.03,
    )))
    host.run(120.0)
    assert senpai.error_skips > 0
    assert len(host.metrics.series("senpai/errors")) > 0
    # Exponential backoff: far fewer errors than polling periods.
    periods = 120.0 / senpai.config.interval_s
    assert senpai.error_skips < periods
    # The healthy container is still controlled.
    assert len(host.metrics.series("app/senpai_reclaim")) > 0


def test_senpai_error_backoff_grows_exponentially():
    host = small_host(ram_gb=1.0, backend="zswap")
    host.add_workload(Workload, profile=_profile(), name="app")
    senpai = host.add_controller(Senpai(SenpaiConfig(
        cgroups=("phantom",),
        error_backoff_s=6.0, error_backoff_max_s=48.0,
    )))
    host.run(300.0)
    errors = host.metrics.series("senpai/errors")
    gaps = [
        errors.times[i + 1] - errors.times[i]
        for i in range(len(errors) - 1)
    ]
    assert gaps, "expected repeated backoff cycles"
    assert max(gaps) > min(gaps)  # later retries are spaced further
    assert max(gaps) <= 48.0 + 2 * senpai.config.interval_s


# ----------------------------------------------------------------------
# oomd


def test_oomd_tolerates_cgroup_vanishing_between_sample_and_kill():
    host = small_host(ram_gb=1.0)
    host.add_workload(Workload, profile=_profile(), name="app")
    oomd = host.add_controller(Oomd(OomdConfig()))
    host.run(10.0)
    host.kill_workload("app")
    host.run(10.0)  # polls a host with no targets: no crash
    assert oomd.kills == []


def test_oomd_lost_race_is_counted_not_fatal():
    host = small_host(ram_gb=1.0)
    host.add_workload(Workload, profile=_profile(), name="app")
    oomd = Oomd(OomdConfig())
    host.kill_workload("app")
    oomd._kill(host, "app", now=1.0)  # the race: target died first
    assert oomd.lost_races == 1
    assert oomd.kills == []
    assert not host.has_workload("app")  # and nothing was double-killed


def test_oomd_does_not_double_kill():
    host = small_host(ram_gb=1.0)
    host.add_workload(Workload, profile=_profile(), name="app")
    oomd = Oomd(OomdConfig())
    oomd._kill(host, "app", now=1.0)
    oomd._kill(host, "app", now=2.0)
    assert [cg for _, cg in oomd.kills] == ["app"]
    assert oomd.lost_races == 1


def test_oomd_targets_use_public_membership():
    """_targets must work against any host exposing hosted() — no
    reliance on host internals (the old ``host._hosted`` reach-in)."""

    class _Hosted:
        def __init__(self, name):
            self.cgroup_name = name

    class _MinimalHost:
        def hosted(self):
            return [_Hosted("a"), _Hosted("b")]

    oomd = Oomd(OomdConfig(cgroups=("b", "ghost")))
    assert oomd._targets(_MinimalHost()) == ["b"]
    assert Oomd(OomdConfig())._targets(_MinimalHost()) == ["a", "b"]
