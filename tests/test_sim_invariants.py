"""Unit tests for the debug-mode runtime invariant checker.

Each corruption test reaches into a healthy host, breaks one of the
redundant state views directly, and asserts the checker names the
broken invariant — proving the checks would catch real accounting bugs
at the tick that introduces them.
"""

import pytest

from repro.kernel.page import PageKind
from repro.psi.types import Resource
from repro.sim.host import Host, HostConfig
from repro.sim.invariants import (
    ENV_FLAG,
    InvariantChecker,
    InvariantViolation,
    checking_enabled,
    env_enabled,
)
from repro.workloads.access import HeatBands
from repro.workloads.apps import AppProfile
from repro.workloads.base import Workload

from tests.helpers import small_host

MB = 1 << 20
_GB = 1 << 30


def checked_host(**kwargs) -> Host:
    host = small_host(check_invariants=True, **kwargs)
    profile = AppProfile(
        name="app",
        size_gb=400 * MB / _GB,
        anon_frac=0.6,
        bands=HeatBands(0.4, 0.1, 0.1),
        compress_ratio=3.0,
        nthreads=2,
        cpu_cores=1.0,
    )
    host.add_workload(Workload, profile=profile, name="app")
    return host


# ----------------------------------------------------------------------
# enablement plumbing


def test_disabled_by_default(monkeypatch):
    monkeypatch.delenv(ENV_FLAG, raising=False)
    assert small_host().invariants is None


def test_config_flag_enables():
    assert checked_host().invariants is not None


def test_env_flag_enables(monkeypatch):
    monkeypatch.setenv(ENV_FLAG, "1")
    assert small_host().invariants is not None
    monkeypatch.setenv(ENV_FLAG, "off")
    assert small_host().invariants is None


def test_config_flag_overrides_env(monkeypatch):
    monkeypatch.setenv(ENV_FLAG, "1")
    assert small_host(check_invariants=False).invariants is None
    monkeypatch.delenv(ENV_FLAG)
    assert small_host(check_invariants=True).invariants is not None


def test_env_parsing():
    assert env_enabled({ENV_FLAG: "true"})
    assert env_enabled({ENV_FLAG: " YES "})
    assert not env_enabled({ENV_FLAG: "0"})
    assert not env_enabled({})
    assert checking_enabled(None) == env_enabled()


# ----------------------------------------------------------------------
# a healthy host stays silent


def test_clean_run_raises_nothing():
    host = checked_host()
    host.run(20.0)  # every tick cross-checked
    assert host.clock.now == pytest.approx(20.0)


def test_clean_run_with_reclaim_pressure():
    # Small RAM forces offloading, exercising every page-state
    # transition under checking.
    host = checked_host(ram_gb=0.5)
    host.run(20.0)


# ----------------------------------------------------------------------
# corruption is caught


def test_catches_anon_counter_drift():
    host = checked_host()
    host.run(2.0)
    host.mm.cgroup("app").anon_bytes += host.mm.page_size_bytes
    with pytest.raises(InvariantViolation, match="anon_bytes"):
        host.step()


def test_catches_swap_counter_drift():
    host = checked_host()
    host.run(2.0)
    host.mm.cgroup("app").swap_bytes += host.mm.page_size_bytes
    with pytest.raises(InvariantViolation, match="swap_bytes"):
        host.step()


def test_catches_lru_membership_leak():
    host = checked_host()
    host.run(2.0)
    cgroup = host.mm.cgroup("app")
    # Drop one resident file page from its LRU without uncharging —
    # the classic "forgot to update the list" bug.
    lru = cgroup.lru[PageKind.FILE]
    victim = next(iter(lru.inactive or lru.active))
    lru.remove(victim)
    checker = host.invariants
    with pytest.raises(InvariantViolation, match="LRU"):
        checker.check_lru_accounting(host.mm)


def test_catches_negative_free_memory():
    host = checked_host()
    checker = host.invariants
    host.mm.ram_bytes = host.mm.used_bytes() - 1
    with pytest.raises(InvariantViolation, match="overcommitted"):
        checker.check_dram_budget(host.mm)


class _StubGroup:
    def __init__(self, name, sample):
        self.name = name
        self._sample = sample

    def sample(self, resource, now):
        return self._sample


class _StubPsi:
    def __init__(self, *groups):
        self._groups = list(groups)

    def groups(self):
        return list(self._groups)


def _sample(**overrides):
    from repro.psi.group import PressureSample

    fields = dict(
        resource=Resource.MEMORY,
        some_avg10=0.2, some_avg60=0.1, some_avg300=0.05,
        some_total=3.0,
        full_avg10=0.1, full_avg60=0.05, full_avg300=0.02,
        full_total=1.0,
    )
    fields.update(overrides)
    return PressureSample(**fields)


def test_catches_psi_fraction_out_of_range():
    checker = InvariantChecker()
    psi = _StubPsi(_StubGroup("g", _sample(some_avg10=1.5)))
    with pytest.raises(InvariantViolation, match="outside"):
        checker.check_psi(psi, now_s=1.0)


def test_catches_full_exceeding_some():
    checker = InvariantChecker()
    psi = _StubPsi(_StubGroup("g", _sample(full_avg10=0.9)))
    with pytest.raises(InvariantViolation, match="exceeds"):
        checker.check_psi(psi, now_s=1.0)


def test_catches_backwards_stall_total():
    checker = InvariantChecker()
    psi = _StubPsi(_StubGroup("g", _sample(some_total=5.0)))
    checker.check_psi(psi, now_s=1.0)
    psi = _StubPsi(_StubGroup("g", _sample(some_total=4.0)))
    with pytest.raises(InvariantViolation, match="backwards"):
        checker.check_psi(psi, now_s=2.0)


def test_violation_is_assertion_error():
    # So `pytest` and plain `assert`-aware tooling both catch it.
    assert issubclass(InvariantViolation, AssertionError)
