"""Shared construction helpers for tests (importable, unlike conftest)."""

from __future__ import annotations

import numpy as np

from repro.backends.filesystem import FilesystemBackend
from repro.backends.ssd import SsdSwapBackend
from repro.backends.zswap import ZswapBackend
from repro.kernel.mm import MemoryManager
from repro.sim.host import Host, HostConfig

MB = 1 << 20
GB = 1 << 30


def make_mm(
    ram_mb: int = 256,
    page_kb: int = 256,
    backend: str = "zswap",
    policy=None,
    seed: int = 42,
) -> MemoryManager:
    """A small MemoryManager with the requested backend."""
    rng_fs = np.random.default_rng(seed)
    rng_sw = np.random.default_rng(seed + 1)
    fs = FilesystemBackend("C", rng_fs)
    if backend == "zswap":
        swap = ZswapBackend(rng_sw)
    elif backend == "ssd":
        swap = SsdSwapBackend("C", rng_sw, capacity_bytes=ram_mb * MB)
    elif backend is None:
        swap = None
    else:
        raise ValueError(backend)
    return MemoryManager(
        ram_bytes=ram_mb * MB,
        page_size_bytes=page_kb * 1024,
        fs=fs,
        swap_backend=swap,
        policy=policy,
    )


def small_host(
    ram_gb: float = 2.0,
    backend="zswap",
    ncpu: int = 8,
    seed: int = 42,
    **kwargs,
) -> Host:
    """A small host for integration tests (1 MiB pages)."""
    config = HostConfig(
        ram_gb=ram_gb,
        ncpu=ncpu,
        page_size_bytes=1 * MB,
        seed=seed,
        backend=backend,
        **kwargs,
    )
    return Host(config)
