"""Senpai hardening: circuit breaker, staleness skips, actual elapsed time."""

import pytest

from repro.core.senpai import Senpai, SenpaiConfig
from repro.psi.types import Resource
from repro.workloads.access import HeatBands
from repro.workloads.apps import AppProfile
from repro.workloads.base import Workload

from tests.helpers import small_host

MB = 1 << 20
GB = 1 << 30


def _profile(npages=1600):
    """Overcommits a 1 GB host so the swap path carries real traffic."""
    return AppProfile(
        name="app", size_gb=npages * MB / GB, anon_frac=0.7,
        bands=HeatBands(0.25, 0.10, 0.10), compress_ratio=3.0,
        nthreads=2, cpu_cores=1.0,
    )


def _breaker_host(**senpai_overrides):
    host = small_host(ram_gb=1.0, backend="ssd", swap_gb=1.0)
    host.add_workload(Workload, profile=_profile(), name="app")
    defaults = dict(
        reclaim_ratio=0.005, max_step_frac=0.03, write_limit_mb_s=None,
        breaker_trip_polls=2, breaker_probe_s=30.0,
    )
    defaults.update(senpai_overrides)
    senpai = host.add_controller(Senpai(SenpaiConfig(**defaults)))
    return host, senpai


def test_breaker_opens_on_swap_fault_storm_and_recloses():
    host, senpai = _breaker_host()
    host.run(300.0)  # build up steady swap traffic
    assert host.mm.swap_op_count > 0
    assert senpai.breaker_state == "closed"

    host.swap_backend.device.faults.io_error_rate = 0.95
    host.run(180.0)
    assert senpai.breaker_open_count >= 1
    assert host.mm.swap_fault_count > 0

    host.swap_backend.device.faults.clear()
    host.run(300.0)
    assert senpai.breaker_reclose_count >= 1
    assert senpai.breaker_state == "closed"

    degraded = host.metrics.series("senpai/degraded")
    assert 1.0 in degraded.values  # open
    assert 0.5 in degraded.values  # half-open probe
    assert degraded.values[-1] == 0.0  # re-closed


def test_breaker_open_means_file_only_reclaim():
    host, senpai = _breaker_host()
    host.run(300.0)
    host.swap_backend.device.faults.io_error_rate = 1.0
    host.run(120.0)
    assert senpai.breaker_state == "open"

    # While open, Senpai must not push more pages at the dead device:
    # reclaim-driven swap stores stop (the only swap ops left are the
    # workload's own swap-ins of already-offloaded pages).
    stores_before = host.swap_backend.stats.writes
    host.run(60.0)
    assert senpai.breaker_state in ("open", "half_open")
    assert host.swap_backend.stats.writes == stores_before


def test_breaker_ignores_sporadic_faults():
    """A low error rate never trips the majority-faulty breaker."""
    host, senpai = _breaker_host()
    host.run(300.0)
    host.swap_backend.device.faults.io_error_rate = 0.02
    host.run(300.0)
    assert senpai.breaker_state == "closed"
    assert senpai.breaker_open_count == 0


def test_stale_telemetry_skips_reclaim_period():
    host, senpai = _breaker_host(stale_after_s=20.0)
    host.run(120.0)
    reclaims_before = len(host.metrics.series("app/senpai_reclaim"))

    host.psi.freeze_telemetry(host.clock.now)
    host.run(100.0)
    assert senpai.stale_skips > 0
    stale = host.metrics.series("senpai/stale")
    assert len(stale) == senpai.stale_skips
    # No reclaim was issued on frozen telemetry (the first few polls
    # inside the stale_after_s grace window may still have run).
    reclaims_during = (
        len(host.metrics.series("app/senpai_reclaim")) - reclaims_before
    )
    assert reclaims_during <= 4

    host.psi.thaw_telemetry()
    skips = senpai.stale_skips
    host.run(60.0)
    assert senpai.stale_skips == skips  # healthy again
    assert len(host.metrics.series("app/senpai_reclaim")) > reclaims_before


def test_stale_skip_preserves_pressure_normalisation():
    """Post-thaw pressure is divided by the true elapsed gap, so a
    freeze must not manufacture a pressure spike or a zero-pressure
    reclaim burst."""
    host, senpai = _breaker_host(stale_after_s=20.0)
    host.run(200.0)
    host.psi.freeze_telemetry(host.clock.now)
    host.run(60.0)
    host.psi.thaw_telemetry()
    host.run(30.0)
    pressures = host.metrics.series("app/senpai_pressure").values
    assert pressures  # resumed
    assert all(p >= 0.0 for p in pressures)


class _StubPsi:
    def __init__(self):
        self.totals = {Resource.MEMORY: 0.0, Resource.IO: 0.0}

    def some_total(self, cgroup, resource):
        return self.totals[resource]


class _StubHost:
    def __init__(self):
        self.psi = _StubPsi()


def test_observed_pressure_divides_by_actual_elapsed_time():
    """Satellite fix: pressure = delta / actual elapsed, not interval."""
    senpai = Senpai(SenpaiConfig(psi_threshold=0.001, io_threshold=0.001))
    host = _StubHost()
    senpai.observed_pressure(host, "app", 6.0)  # prime

    host.psi.totals[Resource.MEMORY] = 0.012
    # The same stall delta over a doubled period is half the pressure.
    assert senpai.observed_pressure(host, "app", 12.0) == pytest.approx(
        (0.012 / 12.0) / 0.001
    )
    host.psi.totals[Resource.MEMORY] = 0.024
    assert senpai.observed_pressure(host, "app", 6.0) == pytest.approx(
        (0.012 / 6.0) / 0.001
    )


def test_observed_pressure_guards_zero_elapsed():
    senpai = Senpai(SenpaiConfig())
    host = _StubHost()
    senpai.observed_pressure(host, "app", 6.0)
    host.psi.totals[Resource.MEMORY] = 0.001
    assert senpai.observed_pressure(host, "app", 0.0) > 0.0  # no div-by-0
