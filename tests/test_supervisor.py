"""Supervisor: crash/hang detection, capped-backoff restart, metrics.

Covers the watchdog three ways: direct polls against a scripted
controller (state-machine precision), injected ``controller_crash`` /
``controller_hang`` faults through the full host loop (the acceptance
scenario: recovery visible in ``supervisor/*`` metrics), and the
restart-from-persisted-state contract.
"""

import pytest

from repro.core.senpai import Senpai, SenpaiConfig
from repro.core.supervisor import (
    ControllerFaultState,
    Supervisor,
    SupervisorConfig,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultPlan
from repro.sim.host import Host, HostConfig
from repro.workloads.web import WebWorkload

MB = 1 << 20


def make_host(seed: int = 21) -> Host:
    host = Host(HostConfig(
        ram_gb=1.0, page_size_bytes=1 * MB, ncpu=8,
        backend="ssd", seed=seed,
    ))
    host.add_workload(WebWorkload, name="app", size_scale=0.01)
    return host


def controller_plan(*events: FaultEvent) -> FaultPlan:
    return FaultPlan(seed=0, duration_s=600.0, events=tuple(events))


def crash_event(start_s: float) -> FaultEvent:
    return FaultEvent(kind="controller_crash", target="controller",
                      start_s=start_s, duration_s=0.0, severity=1.0)


def hang_event(start_s: float, duration_s: float) -> FaultEvent:
    return FaultEvent(kind="controller_hang", target="controller",
                      start_s=start_s, duration_s=duration_s,
                      severity=1.0)


def boom(host, now):
    raise RuntimeError("controller bug")


def failing_senpai() -> Senpai:
    """A real (hence persistable) Senpai whose every poll raises.

    The instance attribute shadows the method, so the supervisor's
    persist path still sees an encodable ``Senpai``. A restart decodes
    a fresh, healthy instance — tests re-arm it when the failure must
    persist across restarts.
    """
    senpai = Senpai(SenpaiConfig(interval_s=30.0))
    senpai.poll = boom
    return senpai


# ----------------------------------------------------------------------
# fault seam semantics


def test_clear_preserves_crash_pending():
    state = ControllerFaultState(crash_pending=True, hung=True)
    state.clear()
    assert state.crash_pending is True  # instant-driven, consumed once
    assert state.hung is False  # window-driven, recomputed per poll


# ----------------------------------------------------------------------
# end-to-end: injected faults through the host loop


def test_supervisor_restarts_a_crashed_controller():
    host = make_host()
    host.add_controller(FaultInjector(controller_plan(crash_event(100.0))))
    sup = host.add_controller(Supervisor(
        Senpai(SenpaiConfig(interval_s=30.0)),
        SupervisorConfig(restart_backoff_s=10.0),
    ))
    host.run(300.0)

    assert sup.crash_count == 1
    assert sup.restart_count == 1
    assert sup.alive is True
    crashes = host.metrics.series("supervisor/crashes")
    assert list(crashes.values) == [1.0]
    restarts = host.metrics.series("supervisor/restarts")
    assert list(restarts.values) == [1.0]
    # The restart happened after the configured backoff.
    assert restarts.times[0] >= crashes.times[0] + 10.0
    # The alive gauge dipped to 0 during the outage and recovered.
    alive = host.metrics.series("supervisor/alive")
    assert 0.0 in alive.values
    assert alive.values[-1] == 1.0


def test_supervisor_kills_and_restarts_a_hung_controller():
    host = make_host()
    host.add_controller(FaultInjector(controller_plan(
        hang_event(100.0, 60.0)
    )))
    sup = host.add_controller(Supervisor(
        Senpai(SenpaiConfig(interval_s=30.0)),
        SupervisorConfig(hang_timeout_s=30.0, restart_backoff_s=10.0),
    ))
    host.run(300.0)

    assert sup.hang_kill_count >= 1
    assert sup.restart_count >= 1
    assert sup.alive is True
    hang_kills = host.metrics.series("supervisor/hang_kills")
    assert hang_kills.last() >= 1.0
    assert "supervisor/restarts" in host.metrics.names()
    alive = host.metrics.series("supervisor/alive")
    assert alive.values[-1] == 1.0


def test_controller_fault_without_supervisor_is_skipped():
    host = make_host()
    injector = host.add_controller(FaultInjector(controller_plan(
        crash_event(100.0)
    )))
    host.add_controller(Senpai(SenpaiConfig(interval_s=30.0)))
    host.run(300.0)
    # No supervised controller exposes the seam: the event is counted
    # as skipped rather than silently dropped.
    assert injector.skipped == 1
    assert "supervisor/crashes" not in host.metrics.names()


# ----------------------------------------------------------------------
# state machine: direct polls


def test_backoff_doubles_and_caps_per_consecutive_death():
    host = make_host()
    sup = Supervisor(failing_senpai(), SupervisorConfig(
        restart_backoff_s=10.0, restart_backoff_max_s=40.0,
    ))
    sup.poll(host, 0.0)  # raises inside -> dead
    assert sup.alive is False
    assert sup._restart_at_s == 10.0
    sup.poll(host, 5.0)  # backoff not elapsed: stays dead
    assert sup.alive is False
    sup.poll(host, 10.0)  # restart (restarts never delegate in-poll)
    assert sup.alive is True
    sup.controller.poll = boom  # re-arm the decoded replacement
    sup.poll(host, 11.0)  # dies again: the wait has doubled
    assert sup._restart_at_s == 11.0 + 20.0
    sup.poll(host, 31.0)  # restart
    sup.controller.poll = boom
    sup.poll(host, 32.0)
    assert sup._restart_at_s == 32.0 + 40.0
    sup.poll(host, 72.0)  # restart
    sup.controller.poll = boom
    sup.poll(host, 73.0)
    assert sup._restart_at_s == 73.0 + 40.0  # capped
    assert sup.crash_count == 4
    assert sup.restart_count == 3


def test_successful_poll_resets_the_backoff():
    host = make_host()
    sup = Supervisor(
        Senpai(SenpaiConfig(interval_s=30.0)),
        SupervisorConfig(restart_backoff_s=10.0,
                         restart_backoff_max_s=40.0),
    )
    sup.faults.crash_pending = True
    sup.poll(host, 0.0)  # die: backoff escalates to 20
    sup.poll(host, 10.0)  # restart
    sup.poll(host, 11.0)  # healthy poll resets the ladder
    assert sup.alive is True
    sup.faults.crash_pending = True
    sup.poll(host, 12.0)
    assert sup._restart_at_s == 12.0 + 10.0


def test_hang_kill_waits_for_the_timeout():
    host = make_host()
    sup = Supervisor(
        Senpai(SenpaiConfig(interval_s=30.0)),
        SupervisorConfig(hang_timeout_s=30.0),
    )
    sup.poll(host, 0.0)  # healthy: heartbeat at 0
    sup.faults.hung = True
    sup.poll(host, 20.0)  # stale 20s < 30s: still alive, no inner poll
    assert sup.alive is True
    sup.poll(host, 30.0)  # stale 30s: killed
    assert sup.alive is False
    assert sup.hang_kill_count == 1


def test_restart_resumes_from_the_last_persisted_state():
    host = make_host()
    inner = Senpai(SenpaiConfig(interval_s=30.0))
    sup = Supervisor(inner, SupervisorConfig(
        persist_interval_s=30.0, restart_backoff_s=10.0,
    ))
    sup.poll(host, 0.0)  # first poll persists before delegating
    inner.stale_skips = 7  # in-memory-only mutation after the persist
    sup.faults.crash_pending = True
    sup.poll(host, 10.0)  # dies before the next persist window
    sup.poll(host, 20.0)  # restart from the t=0 snapshot
    assert sup.alive is True
    assert sup.controller is not inner  # a fresh instance...
    assert isinstance(sup.controller, Senpai)
    assert sup.controller.stale_skips == 0  # ...without the lost state


def test_inner_poll_exception_does_not_escape():
    host = make_host()
    polls = []
    senpai = Senpai(SenpaiConfig(interval_s=30.0))

    def tracked_boom(inner_host, now):
        polls.append(now)
        raise RuntimeError("controller bug")

    senpai.poll = tracked_boom
    sup = Supervisor(senpai, SupervisorConfig())
    sup.poll(host, 0.0)  # must not raise
    assert polls == [0.0]
    assert sup.alive is False
    assert sup.crash_count == 1


# ----------------------------------------------------------------------
# quarantine: the restart budget


def test_quarantine_after_max_restarts():
    """With ``max_restarts=2``, the third consecutive death is final:
    no restart is ever scheduled again, and the quarantine edge is
    recorded as a metric."""
    host = make_host()
    sup = Supervisor(failing_senpai(), SupervisorConfig(
        restart_backoff_s=10.0, restart_backoff_max_s=40.0,
        max_restarts=2,
    ))
    sup.poll(host, 0.0)  # death 1 -> restart scheduled
    assert sup.alive is False and sup.quarantined is False
    sup.poll(host, 10.0)  # restart 1
    sup.controller.poll = boom
    sup.poll(host, 11.0)  # death 2 -> restart scheduled
    sup.poll(host, 31.0)  # restart 2 (budget now spent)
    sup.controller.poll = boom
    sup.poll(host, 32.0)  # death 3 -> quarantine
    assert sup.quarantined is True
    assert sup._restart_at_s is None
    assert "quarantined" in repr(sup)
    sup.poll(host, 1000.0)  # never comes back
    assert sup.alive is False
    assert sup.restart_count == 2
    edges = host.metrics.series("supervisor/quarantined")
    assert list(zip(edges.times, edges.values)) == [(32.0, 1.0)]


def test_quarantine_budget_counts_consecutive_deaths_only():
    """A healthy poll between deaths resets the quarantine ladder, not
    just the backoff."""
    host = make_host()
    sup = Supervisor(
        Senpai(SenpaiConfig(interval_s=30.0)),
        SupervisorConfig(restart_backoff_s=10.0, max_restarts=1),
    )
    sup.faults.crash_pending = True
    sup.poll(host, 0.0)  # death 1
    sup.poll(host, 10.0)  # restart
    sup.poll(host, 11.0)  # healthy: ladder resets
    sup.faults.crash_pending = True
    sup.poll(host, 12.0)  # death — but consecutive count is 1 again
    assert sup.quarantined is False
    sup.poll(host, 22.0)  # restart still happens
    assert sup.alive is True


def test_default_config_never_quarantines():
    host = make_host()
    sup = Supervisor(failing_senpai(), SupervisorConfig(
        restart_backoff_s=1.0, restart_backoff_max_s=1.0,
    ))
    now = 0.0
    for _ in range(10):
        sup.controller.poll = boom  # re-arm the decoded replacement
        sup.poll(host, now)  # death N
        now += 1.0
        sup.poll(host, now)  # restart N
        now += 1.0
    assert sup.quarantined is False
    assert sup.restart_count == 10


# ----------------------------------------------------------------------
# live controller swap + manual un-quarantine (the control plane's
# seams; see repro.fleetd)


def test_replace_controller_resets_watchdog_bookkeeping():
    host = make_host()
    sup = Supervisor(
        Senpai(SenpaiConfig(interval_s=30.0)),
        SupervisorConfig(restart_backoff_s=10.0),
    )
    sup.poll(host, 0.0)
    replacement = Senpai(SenpaiConfig(interval_s=5.0))
    sup.replace_controller(replacement)
    assert sup.controller is replacement
    assert sup._persisted is None
    assert sup._last_heartbeat_s is None
    assert sup.alive  # liveness is untouched by a policy swap
    # The replacement polls normally from here on.
    sup.poll(host, 1.0)
    assert sup.alive


def test_replace_controller_does_not_revive_a_quarantined_host():
    host = make_host()
    sup = Supervisor(failing_senpai(), SupervisorConfig(
        restart_backoff_s=1.0, max_restarts=0,
    ))
    sup.poll(host, 0.0)  # death 1 -> immediate quarantine
    assert sup.quarantined
    sup.replace_controller(Senpai(SenpaiConfig()))
    assert sup.quarantined
    assert not sup.alive


def test_reset_quarantine_is_a_noop_when_healthy():
    host = make_host()
    sup = Supervisor(Senpai(SenpaiConfig()), SupervisorConfig())
    assert sup.reset_quarantine(host, 0.0) is False
    assert sup.unquarantine_count == 0
    assert len(host.metrics.series("supervisor/unquarantined")) == 0


def test_reset_quarantine_restarts_and_records_the_edge():
    host = make_host()
    sup = Supervisor(failing_senpai(), SupervisorConfig(
        restart_backoff_s=10.0, max_restarts=0,
    ))
    sup.poll(host, 0.0)  # death 1 -> quarantine (budget 0)
    assert sup.quarantined and not sup.alive
    assert sup.reset_quarantine(host, 50.0) is True
    assert sup.alive and not sup.quarantined
    assert sup.unquarantine_count == 1
    edges = host.metrics.series("supervisor/unquarantined")
    assert list(zip(edges.times, edges.values)) == [(50.0, 1.0)]
    # The restart budget is fresh: another death restarts again
    # instead of re-quarantining immediately... (max_restarts=0 means
    # the *next* consecutive death quarantines again, but the reset
    # cleared the current streak, so a healthy run continues.)
    sup.poll(host, 51.0)
    assert sup.alive
