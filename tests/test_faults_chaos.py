"""The chaos harness: graceful degradation must hold on every CI seed.

These are the same seeds and duration CI's ``chaos`` job sweeps via
``python -m repro chaos --seeds 1 2 3 4 5``; keep the two in sync.
"""

import pytest

from repro.faults.chaos import ChaosConfig, metrics_digest, run_chaos

#: The seeds CI sweeps (see .github/workflows/ci.yml and the Makefile).
CI_SEEDS = (1, 2, 3, 4, 5)

_DURATION_S = 900.0


@pytest.fixture(scope="module")
def reports():
    """Run each CI seed once; the tests below share the results."""
    out = {}
    for seed in CI_SEEDS:
        config = ChaosConfig(seed=seed, duration_s=_DURATION_S)
        out[seed] = (config, run_chaos(config))
    return out


@pytest.mark.parametrize("seed", CI_SEEDS)
def test_ci_seed_degrades_gracefully(reports, seed):
    config, report = reports[seed]
    assert report.passed(config), report.failures(config)


@pytest.mark.parametrize("seed", CI_SEEDS)
def test_no_unhandled_error_or_invariant_violation(reports, seed):
    _, report = reports[seed]
    assert report.unhandled_error is None


@pytest.mark.parametrize("seed", CI_SEEDS)
def test_faults_visible_in_metrics(reports, seed):
    _, report = reports[seed]
    assert report.injected_events > 0
    assert report.fault_counts  # per-kind faults/* series were recorded


@pytest.mark.parametrize("seed", CI_SEEDS)
def test_breaker_opened_and_reclosed(reports, seed):
    _, report = reports[seed]
    assert report.breaker_opened
    assert report.breaker_reclosed


def test_same_seed_is_bit_identical(reports):
    """Identical seed => identical fault schedule and metric series."""
    config, first = reports[CI_SEEDS[0]]
    second = run_chaos(config)
    assert second.plan_digest == first.plan_digest
    assert second.series_digest == first.series_digest
    assert second.fault_counts == first.fault_counts
    assert second.rps_tail == first.rps_tail


def test_different_seeds_differ(reports):
    _, a = reports[CI_SEEDS[0]]
    _, b = reports[CI_SEEDS[1]]
    assert a.plan_digest != b.plan_digest
    assert a.series_digest != b.series_digest


def test_report_failure_reasons_name_each_gap():
    config = ChaosConfig(seed=1)
    from repro.faults.chaos import ChaosReport

    report = ChaosReport(seed=1, duration_s=900.0,
                         unhandled_error="RuntimeError('boom')")
    reasons = report.failures(config)
    assert any("unhandled" in r for r in reasons)
    assert any("never opened" in r for r in reasons)
    assert not report.passed(config)


def test_metrics_digest_is_order_insensitive_but_value_sensitive():
    from repro.sim.metrics import MetricsRecorder

    a = MetricsRecorder()
    a.record("x", 1.0, 2.0)
    a.record("y", 1.0, 3.0)
    b = MetricsRecorder()
    b.record("y", 1.0, 3.0)
    b.record("x", 1.0, 2.0)
    assert metrics_digest(a) == metrics_digest(b)
    b.record("x", 2.0, 2.0)
    assert metrics_digest(a) != metrics_digest(b)
