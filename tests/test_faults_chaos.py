"""The chaos harness: graceful degradation must hold on every CI seed.

These are the same seeds and duration CI's ``chaos`` job sweeps via
``python -m repro chaos --seeds 1 2 3 4 5``; keep the two in sync.
"""

import pytest

from repro.faults.chaos import ChaosConfig, metrics_digest, run_chaos

#: The seeds CI sweeps (see .github/workflows/ci.yml and the Makefile).
CI_SEEDS = (1, 2, 3, 4, 5)

_DURATION_S = 900.0


@pytest.fixture(scope="module")
def reports():
    """Run each CI seed once; the tests below share the results."""
    out = {}
    for seed in CI_SEEDS:
        config = ChaosConfig(seed=seed, duration_s=_DURATION_S)
        out[seed] = (config, run_chaos(config))
    return out


@pytest.mark.parametrize("seed", CI_SEEDS)
def test_ci_seed_degrades_gracefully(reports, seed):
    config, report = reports[seed]
    assert report.passed(config), report.failures(config)


@pytest.mark.parametrize("seed", CI_SEEDS)
def test_no_unhandled_error_or_invariant_violation(reports, seed):
    _, report = reports[seed]
    assert report.unhandled_error is None


@pytest.mark.parametrize("seed", CI_SEEDS)
def test_faults_visible_in_metrics(reports, seed):
    _, report = reports[seed]
    assert report.injected_events > 0
    assert report.fault_counts  # per-kind faults/* series were recorded


@pytest.mark.parametrize("seed", CI_SEEDS)
def test_breaker_opened_and_reclosed(reports, seed):
    _, report = reports[seed]
    assert report.breaker_opened
    assert report.breaker_reclosed


def test_same_seed_is_bit_identical(reports):
    """Identical seed => identical fault schedule and metric series."""
    config, first = reports[CI_SEEDS[0]]
    second = run_chaos(config)
    assert second.plan_digest == first.plan_digest
    assert second.series_digest == first.series_digest
    assert second.fault_counts == first.fault_counts
    assert second.rps_tail == first.rps_tail


def test_different_seeds_differ(reports):
    _, a = reports[CI_SEEDS[0]]
    _, b = reports[CI_SEEDS[1]]
    assert a.plan_digest != b.plan_digest
    assert a.series_digest != b.series_digest


def test_report_failure_reasons_name_each_gap():
    config = ChaosConfig(seed=1)
    from repro.faults.chaos import ChaosReport

    report = ChaosReport(seed=1, duration_s=900.0,
                         unhandled_error="RuntimeError('boom')")
    reasons = report.failures(config)
    assert any("unhandled" in r for r in reasons)
    assert any("never opened" in r for r in reasons)
    assert not report.passed(config)


def test_metrics_digest_is_order_insensitive_but_value_sensitive():
    from repro.sim.metrics import MetricsRecorder

    a = MetricsRecorder()
    a.record("x", 1.0, 2.0)
    a.record("y", 1.0, 3.0)
    b = MetricsRecorder()
    b.record("y", 1.0, 3.0)
    b.record("x", 1.0, 2.0)
    assert metrics_digest(a) == metrics_digest(b)
    b.record("x", 2.0, 2.0)
    assert metrics_digest(a) != metrics_digest(b)


# ----------------------------------------------------------------------
# fleet-scale chaos (ISSUE 8): worker crash/hang storms over a fleet

from repro.faults.chaos import (  # noqa: E402
    FleetChaosConfig,
    FleetChaosReport,
    format_fleet_chaos,
    run_fleet_chaos,
)

#: Short wall budgets so a hang kill costs ~2 s in tests (CI uses the
#: defaults via ``python -m repro chaos --fleet``).
_FLEET_TEST_KNOBS = dict(
    duration_s=60.0,
    workers=2,
    deadline_min_s=2.0,
    deadline_per_sim_s=0.01,
    checkpoint_every_s=20.0,
)


@pytest.mark.parametrize("seed", [1, 2])
def test_fleet_storm_degrades_gracefully(seed):
    report = run_fleet_chaos(
        FleetChaosConfig(seed=seed, **_FLEET_TEST_KNOBS)
    )
    assert report.passed, report.failures()
    assert report.planned_hosts == 3
    assert report.completed_hosts == 3
    assert sum(report.fault_counts.values()) == 3
    assert report.error is None
    text = format_fleet_chaos(report)
    assert "PASS" in text
    doc = report.to_json()
    assert doc["passed"] is True and doc["failures"] == []


def test_fleet_report_failures_name_each_gap():
    report = FleetChaosReport(
        seed=1, duration_s=60.0, planned_hosts=3, completed_hosts=1,
        quarantined_hosts=2, control_digest="aa", faulted_digest="bb",
        mismatches=("Feed#0: aa != bb",),
        error="RuntimeError('boom')",
    )
    assert report.passed is False
    reasons = " ".join(report.failures())
    assert "unhandled error" in reasons
    assert "1/3" in reasons
    assert "quarantined" in reasons
    assert "digest mismatch" in reasons
    assert "FAIL" in format_fleet_chaos(report)


# ----------------------------------------------------------------------
# the versioned verdict artifact


def test_chaos_verdict_artifact_round_trips(tmp_path):
    from repro.faults.chaos import (
        CHAOS_VERDICT_SCHEMA_VERSION,
        chaos_verdict_document,
        load_chaos_verdicts,
        write_chaos_verdicts,
    )

    doc = chaos_verdict_document(
        "fleet", [1, 2], {"duration_s": 60.0},
        [{"seed": 1, "passed": True}, {"seed": 2, "passed": True}],
    )
    path = tmp_path / "verdict.json"
    write_chaos_verdicts(doc, str(path))
    loaded = load_chaos_verdicts(str(path))
    assert loaded == doc
    assert loaded["schema_version"] == CHAOS_VERDICT_SCHEMA_VERSION
    assert loaded["kind"] == "chaos-verdict"
    assert loaded["config"] == {"duration_s": 60.0}


def test_chaos_verdict_document_validates_inputs():
    from repro.faults.chaos import chaos_verdict_document

    with pytest.raises(ValueError, match="mode"):
        chaos_verdict_document("solo", [1], {}, [{"passed": True}])
    with pytest.raises(ValueError, match="verdicts for"):
        chaos_verdict_document("fleet", [1, 2], {}, [{"passed": True}])


def test_load_chaos_verdicts_refuses_foreign_artifacts(tmp_path):
    import json

    from repro.faults.chaos import (
        chaos_verdict_document,
        load_chaos_verdicts,
    )

    path = tmp_path / "bad.json"

    def write(payload):
        path.write_text(json.dumps(payload))

    write([1, 2, 3])
    with pytest.raises(ValueError, match="not an object"):
        load_chaos_verdicts(str(path))
    # The pre-versioning bare shape is refused with a regeneration hint.
    write({"verdicts": [{"seed": 1, "passed": True}]})
    with pytest.raises(ValueError, match="pre-versioning"):
        load_chaos_verdicts(str(path))
    good = chaos_verdict_document(
        "fleet", [1], {"duration_s": 60.0}, [{"passed": True}]
    )
    write({**good, "schema_version": 99})
    with pytest.raises(ValueError, match="schema_version"):
        load_chaos_verdicts(str(path))
    write({**good, "mode": "henhouse"})
    with pytest.raises(ValueError, match="unknown mode"):
        load_chaos_verdicts(str(path))
    write({**good, "seeds": [1, 2]})
    with pytest.raises(ValueError, match="verdicts for"):
        load_chaos_verdicts(str(path))
    write({**good, "verdicts": [{"seed": 1}]})
    with pytest.raises(ValueError, match="pass/fail"):
        load_chaos_verdicts(str(path))
    write({**good, "config": None})
    with pytest.raises(ValueError, match="config provenance"):
        load_chaos_verdicts(str(path))
