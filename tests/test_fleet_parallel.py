"""Parallel fleet execution: determinism, worker-crash isolation and
checkpoint-based recovery.

The contract (docs/PERFORMANCE.md): ``Fleet.run(workers=N)`` is a pure
speedup — reports, failures and per-host metric digests are identical to
the serial rollout, bit for bit. The resilience runtime
(docs/RESILIENCE.md, "Fleet recovery") extends the contract to faulted
rollouts: a worker that crashes or hangs is retried from its spooled
checkpoint, and the recovered fleet's merged digest must equal the
uninterrupted run's.
"""

import os

import pytest

import repro.core.fleetres as fleetres_mod
from repro.core.fleet import FailedHost, Fleet, HostPlan
from repro.core.fleetres import FleetResilienceConfig
from repro.faults.plan import WORKER_KINDS, FaultPlan
from repro.sim.host import HostConfig

MB = 1 << 20

PLANS = [
    HostPlan(app="Feed", count=2, size_scale=0.003),
    HostPlan(app="Web", count=1, size_scale=0.003),
]


def tiny_fleet(seed: int) -> Fleet:
    return Fleet(
        base_config=HostConfig(
            ram_gb=0.25, page_size_bytes=1 * MB, ncpu=4,
        ),
        seed=seed,
    )


def digests(result):
    return [
        (r.app, r.host_index, r.metrics_digest) for r in result.reports
    ]


@pytest.mark.parametrize("seed", [3, 20260704])
def test_parallel_matches_serial_bit_for_bit(seed):
    serial = tiny_fleet(seed).run(PLANS, duration_s=60.0)
    parallel = tiny_fleet(seed).run(PLANS, duration_s=60.0, workers=3)
    assert serial.failed_hosts == [] and parallel.failed_hosts == []
    assert digests(serial) == digests(parallel)
    assert all(d for _, _, d in digests(serial))
    for a, b in zip(serial.reports, parallel.reports):
        assert a.app_saved_bytes == b.app_saved_bytes
        assert a.tax_saved_bytes == b.tax_saved_bytes
        assert a.pgsteal == b.pgsteal


def test_different_seeds_give_different_digests():
    a = tiny_fleet(1).run(PLANS, duration_s=60.0, workers=2)
    b = tiny_fleet(2).run(PLANS, duration_s=60.0, workers=2)
    assert digests(a) != digests(b), (
        "changing the fleet seed changed nothing — the equality test "
        "above would be vacuous"
    )


def test_workers_one_takes_the_serial_path():
    seed = 11
    r1 = tiny_fleet(seed).run(PLANS, duration_s=30.0, workers=1)
    r2 = tiny_fleet(seed).run(PLANS, duration_s=30.0)
    assert digests(r1) == digests(r2)


def test_parallel_isolates_an_in_host_failure():
    plans = PLANS + [
        HostPlan(app="Feed", count=1, size_scale=0.003, backend="bogus"),
    ]
    result = tiny_fleet(5).run(plans, duration_s=30.0, workers=2)
    assert result.partial is True
    assert len(result.reports) == 3
    assert len(result.failed_hosts) == 1
    failed = result.failed_hosts[0]
    assert "bogus" in failed.error
    # The quarantine record carries the full repro context.
    assert failed.phase == "build"
    assert failed.attempts == FleetResilienceConfig().max_attempts
    assert failed.seed != 0
    assert "bogus" in failed.repro_hint()
    assert result.completed_fraction == pytest.approx(3 / 4)


def _die_instead_of_running(*_args, **_kwargs):
    """Stand-in host-attempt body that kills the worker process
    outright, bypassing Python exception handling — the hardest failure
    a worker can produce short of a SIGKILL from outside."""
    os._exit(1)


def test_worker_crash_becomes_failed_hosts(monkeypatch):
    """A worker that keeps dying must surface as quarantined FailedHost
    records, not an exception out of the rollout."""
    monkeypatch.setattr(
        fleetres_mod, "run_host_attempt", _die_instead_of_running
    )
    fast = FleetResilienceConfig(
        retry_backoff_s=0.01, retry_backoff_max_s=0.02,
    )
    result = tiny_fleet(7).run(
        PLANS, duration_s=30.0, workers=2, resilience=fast,
    )
    ntasks = sum(plan.count for plan in PLANS)
    assert result.reports == []
    assert len(result.failed_hosts) == ntasks
    assert result.partial is True
    assert result.completed_fraction == 0.0
    for failed, (app, index) in zip(
        result.failed_hosts,
        [(p.app, i) for p in PLANS for i in range(p.count)],
    ):
        assert isinstance(failed, FailedHost)
        assert (failed.app, failed.host_index) == (app, index)
        assert failed.attempts == fast.max_attempts
        assert "died" in failed.error


# ----------------------------------------------------------------------
# checkpoint-based recovery: the ISSUE 8 digest-equality gate

#: Seeds whose generated plans contain both a worker_crash and a
#: worker_hang against this 3-host fleet (asserted in the test, so a
#: generator change cannot silently hollow the coverage out).
RECOVERY_SEEDS = [2, 7, 9]

#: Short wall-clock budgets so hang kills cost ~2 s, not minutes.
FAST_RECOVERY = FleetResilienceConfig(
    retry_backoff_s=0.01,
    retry_backoff_max_s=0.05,
    deadline_min_s=2.0,
    deadline_per_sim_s=0.01,
    checkpoint_every_s=10.0,
)


@pytest.mark.parametrize("seed", RECOVERY_SEEDS)
def test_recovered_fleet_digest_equals_fault_free(seed):
    """Inject worker crashes/hangs; after recovery the merged fleet
    digest must be bit-identical to the uninterrupted run's."""
    duration_s = 60.0
    control = tiny_fleet(seed).run(PLANS, duration_s=duration_s)
    assert control.failed_hosts == []

    plan = FaultPlan.generate(
        seed, duration_s, extra_events=0,
        worker_faults=3, fleet_hosts=control.planned_hosts,
    )
    kinds = {
        ev.kind for ev in plan.events if ev.kind in WORKER_KINDS
    }
    assert {"worker_crash", "worker_hang"} <= kinds, (
        f"seed {seed} no longer exercises both crash and hang; pick "
        "another seed"
    )
    faulted = tiny_fleet(seed).run(
        PLANS, duration_s=duration_s, workers=3,
        resilience=FAST_RECOVERY, fault_plan=plan,
    )
    assert faulted.failed_hosts == []
    assert faulted.completed_fraction == 1.0
    assert faulted.merged_digest() == control.merged_digest()
    assert digests(faulted) == digests(control)
    # At least one host actually went through a retry, or the test
    # proved nothing.
    assert any(r.attempts > 1 for r in faulted.reports)


def test_recovery_resumes_from_spooled_checkpoint():
    """With a fault after the first spool, the retried host must
    restore (recovered=True), not rebuild from scratch."""
    seed = 11  # plan: worker_crash at t=17.1 on host:2, checkpoints @10s
    duration_s = 60.0
    control = tiny_fleet(seed).run(PLANS, duration_s=duration_s)
    plan = FaultPlan.generate(
        seed, duration_s, extra_events=0,
        worker_faults=3, fleet_hosts=3,
    )
    faulted = tiny_fleet(seed).run(
        PLANS, duration_s=duration_s, workers=2,
        resilience=FAST_RECOVERY, fault_plan=plan,
    )
    assert faulted.failed_hosts == []
    assert faulted.recovered_hosts >= 1
    assert faulted.merged_digest() == control.merged_digest()


def test_serial_faulted_path_matches_parallel():
    """The cooperative serial fault path must agree with the
    process-level parallel path, digest for digest."""
    seed = 2
    duration_s = 60.0
    plan = FaultPlan.generate(
        seed, duration_s, extra_events=0,
        worker_faults=3, fleet_hosts=3,
    )
    serial = tiny_fleet(seed).run(
        PLANS, duration_s=duration_s, workers=1,
        resilience=FAST_RECOVERY, fault_plan=plan,
    )
    parallel = tiny_fleet(seed).run(
        PLANS, duration_s=duration_s, workers=3,
        resilience=FAST_RECOVERY, fault_plan=plan,
    )
    assert serial.failed_hosts == [] and parallel.failed_hosts == []
    assert digests(serial) == digests(parallel)
