"""Parallel fleet execution: determinism and worker-crash isolation.

The contract (docs/PERFORMANCE.md): ``Fleet.run(workers=N)`` is a pure
speedup — reports, failures and per-host metric digests are identical to
the serial rollout, bit for bit, and a worker process dying is contained
as :class:`FailedHost` records rather than aborting the rollout.
"""

import os

import pytest

import repro.core.fleet as fleet_mod
from repro.core.fleet import FailedHost, Fleet, HostPlan
from repro.sim.host import HostConfig

MB = 1 << 20

PLANS = [
    HostPlan(app="Feed", count=2, size_scale=0.003),
    HostPlan(app="Web", count=1, size_scale=0.003),
]


def tiny_fleet(seed: int) -> Fleet:
    return Fleet(
        base_config=HostConfig(
            ram_gb=0.25, page_size_bytes=1 * MB, ncpu=4,
        ),
        seed=seed,
    )


def digests(result):
    return [
        (r.app, r.host_index, r.metrics_digest) for r in result.reports
    ]


@pytest.mark.parametrize("seed", [3, 20260704])
def test_parallel_matches_serial_bit_for_bit(seed):
    serial = tiny_fleet(seed).run(PLANS, duration_s=60.0)
    parallel = tiny_fleet(seed).run(PLANS, duration_s=60.0, workers=3)
    assert serial.failed_hosts == [] and parallel.failed_hosts == []
    assert digests(serial) == digests(parallel)
    assert all(d for _, _, d in digests(serial))
    for a, b in zip(serial.reports, parallel.reports):
        assert a.app_saved_bytes == b.app_saved_bytes
        assert a.tax_saved_bytes == b.tax_saved_bytes
        assert a.pgsteal == b.pgsteal


def test_different_seeds_give_different_digests():
    a = tiny_fleet(1).run(PLANS, duration_s=60.0, workers=2)
    b = tiny_fleet(2).run(PLANS, duration_s=60.0, workers=2)
    assert digests(a) != digests(b), (
        "changing the fleet seed changed nothing — the equality test "
        "above would be vacuous"
    )


def test_workers_one_takes_the_serial_path():
    seed = 11
    r1 = tiny_fleet(seed).run(PLANS, duration_s=30.0, workers=1)
    r2 = tiny_fleet(seed).run(PLANS, duration_s=30.0)
    assert digests(r1) == digests(r2)


def test_parallel_isolates_an_in_host_failure():
    plans = PLANS + [
        HostPlan(app="Feed", count=1, size_scale=0.003, backend="bogus"),
    ]
    result = tiny_fleet(5).run(plans, duration_s=30.0, workers=2)
    assert result.partial is True
    assert len(result.reports) == 3
    assert len(result.failed_hosts) == 1
    assert "bogus" in result.failed_hosts[0].error


def _die_instead_of_running(*_args):
    """Stand-in fleet-host body that kills the worker process outright,
    bypassing Python exception handling — the hardest failure a worker
    can produce short of a SIGKILL from outside."""
    os._exit(1)


def test_worker_crash_becomes_failed_hosts(monkeypatch):
    """A dying worker must surface as FailedHost records, not an
    exception out of the rollout (BrokenProcessPool is swallowed)."""
    monkeypatch.setattr(
        fleet_mod, "_run_fleet_host", _die_instead_of_running
    )
    result = tiny_fleet(7).run(PLANS, duration_s=30.0, workers=2)
    ntasks = sum(plan.count for plan in PLANS)
    assert result.reports == []
    assert len(result.failed_hosts) == ntasks
    assert result.partial is True
    for failed, (app, index) in zip(
        result.failed_hosts,
        [(p.app, i) for p in PLANS for i in range(p.count)],
    ):
        assert isinstance(failed, FailedHost)
        assert (failed.app, failed.host_index) == (app, index)
