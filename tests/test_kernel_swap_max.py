"""Unit tests for per-cgroup swap limits (memory.swap.max)."""

import pytest

from repro.kernel.page import PageState

from tests.helpers import make_mm

PAGE = 256 * 1024


def test_swap_max_caps_offload():
    mm = make_mm(backend="zswap")
    mm.create_cgroup("app")
    mm.alloc_anon("app", 20, now=0.0)
    mm.cgroup("app").swap_max = 5 * PAGE
    # Force the anon-leaning regime so reclaim tries to swap a lot.
    mm.cgroup("app").refault_rate.rate = 100.0
    mm.register_file("app", 10, now=0.0, resident=True)
    mm.memory_reclaim("app", 20 * PAGE, now=1.0)
    cg = mm.cgroup("app")
    assert cg.zswap_bytes <= 5 * PAGE


def test_swap_max_zero_disables_swap():
    mm = make_mm(backend="zswap")
    mm.create_cgroup("app")
    mm.alloc_anon("app", 20, now=0.0)
    mm.register_file("app", 10, now=0.0, resident=True)
    mm.cgroup("app").swap_max = 0
    outcome = mm.memory_reclaim("app", 10 * PAGE, now=1.0)
    assert mm.cgroup("app").zswap_bytes == 0
    assert outcome.reclaimed_anon_bytes == 0
    assert outcome.reclaimed_file_bytes > 0


def test_swap_max_is_per_cgroup():
    mm = make_mm(backend="zswap")
    mm.create_cgroup("capped")
    mm.create_cgroup("free")
    mm.alloc_anon("capped", 10, now=0.0)
    mm.alloc_anon("free", 10, now=0.0)
    mm.cgroup("capped").swap_max = 0
    for name in ("capped", "free"):
        mm.cgroup(name).refault_rate.rate = 100.0
        mm.memory_reclaim(name, 5 * PAGE, now=1.0)
    assert mm.cgroup("capped").zswap_bytes == 0
    assert mm.cgroup("free").zswap_bytes > 0


def test_swap_in_frees_budget_for_re_offload():
    mm = make_mm(backend="zswap")
    mm.create_cgroup("app")
    pages, _ = mm.alloc_anon("app", 10, now=0.0)
    cg = mm.cgroup("app")
    cg.swap_max = 2 * PAGE
    cg.refault_rate.rate = 100.0
    mm.memory_reclaim("app", 4 * PAGE, now=1.0)
    assert cg.zswap_bytes == 2 * PAGE
    swapped = [p for p in pages if p.state is PageState.ZSWAPPED]
    mm.touch(swapped[0], now=2.0)  # frees one slot of budget
    mm.memory_reclaim("app", 2 * PAGE, now=3.0)
    assert cg.zswap_bytes == 2 * PAGE  # refilled up to the cap


def test_control_file_roundtrip():
    from repro.kernel.controlfs import ControlFs
    from repro.psi.tracker import PsiSystem

    mm = make_mm()
    psi = PsiSystem(ncpu=2)
    mm.create_cgroup("app")
    psi.add_group("app")
    fs = ControlFs(mm, psi)
    assert fs.read("app/memory.swap.max", 0.0) == "max"
    fs.write("app/memory.swap.max", "64M", 0.0)
    assert mm.cgroup("app").swap_max == 64 << 20
    fs.write("app/memory.swap.max", "max", 0.0)
    assert mm.cgroup("app").swap_max is None
