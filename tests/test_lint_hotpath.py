"""End-to-end tests of the hot-path analyses (TMO017-TMO021).

The hotpkg fixture package seeds one finding per rule at pinned lines
in a function reachable from the configured entrypoint, plus a twin
``cold`` function with the same shapes that must stay clean. The
repo-tree tests then assert ``src/repro`` is clean and that the
acceptance mutations (a scalar per-page loop on the ``touch_batch``
path, a fresh list allocation in ``Host.step``'s tick loop) re-fail
lint with the right rule id. Profile mode is exercised with
hand-built tick-share documents.
"""

import json
import shutil
from pathlib import Path

import pytest

from repro.lint import cli
from repro.lint.config import default_config
from repro.lint.flow import analyze_flow
from repro.lint.hotpath import (
    PROFILE_SCHEMA_VERSION,
    ProfileError,
    load_profile,
)

HOTPKG = Path("tests/lint_fixtures/hotpkg")
HOT_RULES = ["TMO017", "TMO018", "TMO019", "TMO020", "TMO021"]


def _config(**overrides):
    """The default config with the hot region pointed at hotpkg."""
    config = default_config()
    config.rule_options = dict(config.rule_options)
    config.rule_options["TMO017"] = {
        "entrypoints": ("hotpkg.driver.run",),
        "hot_roots": ("hotpkg.",),
        "profile_share_threshold": 0.05,
        **overrides.get("TMO017", {}),
    }
    return config


def _analyze(paths, config=None, select=HOT_RULES, cache_path=None,
             profile=None):
    return analyze_flow(
        paths, config or _config(), select=select,
        cache_path=cache_path, profile=profile,
    )


def _findings(paths, **kwargs):
    result = _analyze(paths, **kwargs)
    return [
        (v.rule_id, v.path.rpartition("/")[2], v.line)
        for v in result.violations
    ]


def _profile_doc(functions):
    return {"schema_version": PROFILE_SCHEMA_VERSION, "functions": functions}


# ----------------------------------------------------------------------
# the fixture package


def test_fixture_package_findings_exact():
    assert _findings([HOTPKG]) == [
        ("TMO017", "driver.py", 15),  # scalar touch in page loop
        ("TMO018", "driver.py", 16),  # f-string alloc per page
        ("TMO019", "driver.py", 17),  # membership test on a list
        ("TMO020", "driver.py", 22),  # python loop over ndarray
        ("TMO021", "driver.py", 24),  # superseded scalar API
    ]


def test_messages_name_the_api_and_the_fix():
    result = _analyze([HOTPKG])
    by_key = {(v.rule_id, v.line): v.message for v in result.violations}
    assert "hotpkg.engine.Store.touch_batch" in by_key[("TMO017", 15)]
    assert "alloc-ok" in by_key[("TMO018", 16)]
    assert "'needles'" in by_key[("TMO019", 17)]
    assert "set" in by_key[("TMO019", 17)]
    assert "vectorized" in by_key[("TMO020", 22)]
    assert "hotpkg.engine.Store.refresh_all" in by_key[("TMO021", 24)]


def test_alloc_ok_comment_suppresses_the_annotated_line():
    # driver.py:19 allocates a list in the page loop but carries
    # '# tmo-lint: alloc-ok -- ...'; it must not appear.
    lines = [line for rule, _, line in _findings([HOTPKG])
             if rule == "TMO018"]
    assert 19 not in lines


def test_cold_twin_and_batched_owner_stay_clean():
    found = _findings([HOTPKG])
    # cold() (driver.py:28-40) repeats every bad shape outside the hot
    # region; Store.touch_batch's own scalar loop is the exempt owner.
    assert all(line < 28 for _, _, line in found)
    assert all(name == "driver.py" for _, name, _ in found)


def test_unreachable_entrypoint_means_no_findings():
    config = _config(TMO017={"entrypoints": ("hotpkg.driver.absent",)})
    assert _findings([HOTPKG], config=config) == []


# ----------------------------------------------------------------------
# cache invalidation: a registry edit re-triggers TMO021 on files whose
# facts come straight from the cache


def test_registry_edit_retriggers_tmo021_from_cache(tmp_path):
    pkg = tmp_path / "hotpkg"
    shutil.copytree(HOTPKG, pkg)
    cache = tmp_path / "cache.json"

    warm = _analyze([pkg], cache_path=cache)
    assert len(warm.violations) == 5
    assert warm.cache_misses == warm.files_checked

    # Declare Store.touch superseded: only registry.py's hash changes,
    # every other fixture file is served straight from the cache.
    registry = pkg / "registry.py"
    text = registry.read_text()
    mutated = text.replace(
        '    "hotpkg.engine.Store.refresh",\n',
        '    "hotpkg.engine.Store.refresh",\n'
        '    "hotpkg.engine.Store.touch",\n',
    )
    assert mutated != text
    registry.write_text(mutated)

    rerun = _analyze([pkg], cache_path=cache)
    found = [
        (v.rule_id, v.path.rpartition("/")[2], v.line)
        for v in rerun.violations
    ]
    # driver.py:15 escalates from TMO017 to TMO021 (superseded wins)
    # even though driver.py itself was served from the cache.
    assert ("TMO021", "driver.py", 15) in found
    assert ("TMO017", "driver.py", 15) not in found
    assert rerun.cache_hits == rerun.files_checked - 1
    assert rerun.cache_misses == 1


# ----------------------------------------------------------------------
# acceptance mutations against the real tree


def _copy_src(tmp_path):
    target = tmp_path / "src"
    shutil.copytree("src", target)
    return target


def test_scalar_loop_in_touch_batch_path_fails_tmo017(tmp_path):
    src = _copy_src(tmp_path)
    base = src / "repro" / "workloads" / "base.py"
    text = base.read_text()
    anchor = (
        "        events, mem_s, io_s, both_s, work_done, oom = "
        "self.mm.touch_batch(\n"
    )
    mutated = text.replace(
        anchor,
        "        for index in touched:\n"
        "            self.mm.touch(self._pages[index], now)\n" + anchor,
    )
    assert mutated != text
    base.write_text(mutated)

    result = analyze_flow([src], default_config(), select=["TMO017"])
    messages = [v.message for v in result.violations]
    assert any(
        "MemoryManager.touch" in m and "touch_batch" in m
        for m in messages
    )


def test_list_alloc_in_host_step_loop_fails_tmo018(tmp_path):
    src = _copy_src(tmp_path)
    host = src / "repro" / "sim" / "host.py"
    text = host.read_text()
    anchor = (
        "        for name, hosted in self._hosted.items():\n"
        "            results[name] = hosted.workload.tick(now0, dt)\n"
        "            hosted.last_tick = results[name]\n"
    )
    mutated = text.replace(
        anchor,
        "        for name, hosted in self._hosted.items():\n"
        "            scratch = [name, hosted]\n"
        "            results[name] = hosted.workload.tick(now0, dt)\n"
        "            hosted.last_tick = scratch and results[name]\n",
    )
    assert mutated != text
    host.write_text(mutated)

    result = analyze_flow([src], default_config(), select=["TMO018"])
    found = [
        (v.path.rpartition("/")[2], v.message) for v in result.violations
    ]
    assert any(name == "host.py" and "step()" in m for name, m in found)


# ----------------------------------------------------------------------
# profile mode


def test_profile_escalates_findings_in_measured_hot_functions():
    profile = _profile_doc([{
        "file": "tests/lint_fixtures/hotpkg/driver.py",
        "line": 11, "name": "run", "tick_share": 0.5,
    }])
    result = _analyze([HOTPKG], profile=profile)
    assert len(result.violations) == 5
    for violation in result.violations:
        assert violation.message.endswith(
            " [measured 50.0% of tick time]"
        )


def test_profile_below_threshold_adds_no_marker():
    profile = _profile_doc([{
        "file": "tests/lint_fixtures/hotpkg/driver.py",
        "line": 11, "name": "run", "tick_share": 0.01,
    }])
    result = _analyze([HOTPKG], profile=profile)
    assert not any(
        "measured" in v.message for v in result.violations
    )
    assert result.hot_unanalyzed == []


def test_profile_reports_hot_but_unanalyzed_functions():
    profile = _profile_doc([
        {"file": "tests/lint_fixtures/hotpkg/driver.py",
         "line": 11, "name": "run", "tick_share": 0.5},
        {"file": "tests/lint_fixtures/hotpkg/driver.py",
         "line": 28, "name": "cold", "tick_share": 0.25},
    ])
    result = _analyze([HOTPKG], profile=profile)
    assert [
        (entry["key"], entry["share"]) for entry in result.hot_unanalyzed
    ] == [("hotpkg.driver.cold", 0.25)]
    assert result.hot_unanalyzed[0]["path"].endswith("driver.py")
    assert not result.clean


def test_load_profile_round_trips_a_valid_document(tmp_path):
    path = tmp_path / "profile.json"
    document = _profile_doc([])
    path.write_text(json.dumps(document))
    assert load_profile(path) == document


def test_load_profile_errors_are_one_line(tmp_path):
    with pytest.raises(ProfileError, match="cannot read profile"):
        load_profile(tmp_path / "missing.json")

    bad_json = tmp_path / "bad.json"
    bad_json.write_text("{nope")
    with pytest.raises(ProfileError, match="not valid JSON"):
        load_profile(bad_json)

    stale = tmp_path / "stale.json"
    stale.write_text(json.dumps({"schema_version": 999, "functions": []}))
    with pytest.raises(ProfileError, match="regenerate with") as exc_info:
        load_profile(stale)
    assert "\n" not in str(exc_info.value)


# ----------------------------------------------------------------------
# the CLI surface


def test_cli_missing_profile_is_a_clean_error(tmp_path, capsys):
    rc = cli.main([
        "src/repro/perf/batched.py", "--flow", "--no-baseline",
        "--quiet", "--cache", str(tmp_path / "cache.json"),
        "--profile", str(tmp_path / "missing.json"),
    ])
    captured = capsys.readouterr()
    assert rc == 2
    assert captured.err.startswith("tmo-lint: error: cannot read profile")
    assert captured.err.count("\n") == 1
    assert "Traceback" not in captured.err


def test_cli_schema_mismatch_is_a_clean_error(tmp_path, capsys):
    stale = tmp_path / "stale.json"
    stale.write_text(json.dumps({"schema_version": 0, "functions": []}))
    rc = cli.main([
        "src/repro/perf/batched.py", "--flow", "--no-baseline",
        "--quiet", "--cache", str(tmp_path / "cache.json"),
        "--profile", str(stale),
    ])
    captured = capsys.readouterr()
    assert rc == 2
    assert "schema_version" in captured.err
    assert "regenerate" in captured.err


def test_cli_profile_requires_flow(tmp_path):
    with pytest.raises(SystemExit) as exc_info:
        cli.main([
            "src/repro/perf/batched.py",
            "--profile", str(tmp_path / "profile.json"),
        ])
    assert exc_info.value.code == 2


def test_cli_hot_unanalyzed_fails_and_names_the_function(tmp_path, capsys):
    # With only invariants.py analysed, the default entrypoints are
    # absent, so a measured-hot function there cannot be in the static
    # region: the CLI must report it and exit 1.
    profile_path = tmp_path / "profile.json"
    profile_path.write_text(json.dumps(_profile_doc([{
        "file": "src/repro/sim/invariants.py",
        "line": 1, "name": "check_page_conservation", "tick_share": 0.5,
    }])))
    rc = cli.main([
        "src/repro/sim/invariants.py", "--flow", "--no-baseline",
        "--cache", str(tmp_path / "cache.json"),
        "--profile", str(profile_path),
    ])
    captured = capsys.readouterr()
    assert rc == 1
    assert "[hot-unanalyzed]" in captured.out
    assert "check_page_conservation" in captured.out
    assert "hot-but-unanalyzed" in captured.out


def test_stats_include_per_rule_and_per_pass_wall_time(tmp_path):
    stats = tmp_path / "stats.json"
    rc = cli.main([
        "tests/lint_fixtures/tmo001_bad.py", "--flow", "--no-baseline",
        "--select", "TMO001," + ",".join(HOT_RULES),
        "--quiet", "--cache", str(tmp_path / "cache.json"),
        "--stats", str(stats),
    ])
    assert rc == 1
    payload = json.loads(stats.read_text())
    assert payload["rule_hits"]["TMO001"] >= 1
    assert set(payload["rule_wall_s"]) >= {"TMO001"}
    assert all(w >= 0.0 for w in payload["rule_wall_s"].values())
    assert "hotpath" in payload["flow"]["pass_wall_s"]
    assert all(
        w >= 0.0 for w in payload["flow"]["pass_wall_s"].values()
    )
    assert payload["flow"]["hot_unanalyzed"] == 0


# ----------------------------------------------------------------------
# the repo tree itself


def test_repo_tree_is_clean_for_hot_paths():
    paths = [
        Path("src"), Path("benchmarks"), Path("examples"), Path("tests")
    ]
    result = analyze_flow(
        [p for p in paths if p.exists()],
        default_config(),
        select=HOT_RULES,
    )
    assert [v.format_text() for v in result.violations] == []
