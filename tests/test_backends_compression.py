"""Unit tests for compression algorithm models."""

import pytest

from repro.backends.compression import (
    COMPRESSION_ALGORITHMS,
    compressed_size,
)


def test_catalog_has_the_papers_algorithms():
    assert set(COMPRESSION_ALGORITHMS) == {"lzo", "lz4", "zstd"}


def test_zstd_has_best_ratio():
    ratios = {
        name: algo.effective_ratio(3.0)
        for name, algo in COMPRESSION_ALGORITHMS.items()
    }
    assert ratios["zstd"] > ratios["lzo"] > ratios["lz4"]


def test_lz4_is_fastest():
    speeds = {
        name: algo.compress_us_per_4k
        for name, algo in COMPRESSION_ALGORITHMS.items()
    }
    assert speeds["lz4"] < speeds["lzo"] < speeds["zstd"]


def test_effective_ratio_never_below_one():
    lz4 = COMPRESSION_ALGORITHMS["lz4"]
    assert lz4.effective_ratio(1.0) == 1.0
    assert lz4.effective_ratio(1.1) == 1.0  # 1.1 * 0.75 < 1


def test_compressed_size_scales():
    zstd = COMPRESSION_ALGORITHMS["zstd"]
    assert compressed_size(4096, 4.0, zstd) == 1024
    assert compressed_size(4096, 1.0, zstd) == 4096


def test_compressed_size_rejects_negative():
    zstd = COMPRESSION_ALGORITHMS["zstd"]
    with pytest.raises(ValueError):
        compressed_size(-1, 2.0, zstd)
