"""Unit tests for the metrics recorder."""

import math

import pytest

from repro.sim.metrics import MetricsRecorder, Series, metrics_digest


def test_series_records_in_order():
    s = Series("x")
    s.record(0.0, 1.0)
    s.record(1.0, 2.0)
    assert len(s) == 2
    assert s.values == [1.0, 2.0]


def test_series_rejects_time_reversal():
    s = Series("x")
    s.record(1.0, 1.0)
    with pytest.raises(ValueError):
        s.record(0.5, 2.0)


def test_series_allows_equal_timestamps():
    s = Series("x")
    s.record(1.0, 1.0)
    s.record(1.0, 2.0)
    assert len(s) == 2


def test_series_statistics():
    s = Series("x")
    for t, v in enumerate([1.0, 2.0, 3.0, 4.0]):
        s.record(float(t), v)
    assert s.mean() == pytest.approx(2.5)
    assert s.min() == 1.0
    assert s.max() == 4.0
    assert s.last() == 4.0
    assert s.percentile(50) == pytest.approx(2.5)


def test_empty_series_statistics_are_nan():
    s = Series("x")
    assert math.isnan(s.mean())
    assert math.isnan(s.last())
    assert math.isnan(s.percentile(90))


def test_series_window_slices_half_open():
    s = Series("x")
    for t in range(5):
        s.record(float(t), float(t))
    w = s.window(1.0, 3.0)
    assert w.times == [1.0, 2.0]


def test_series_as_arrays():
    s = Series("x")
    s.record(0.0, 5.0)
    times, values = s.as_arrays()
    assert times.tolist() == [0.0]
    assert values.tolist() == [5.0]


def test_recorder_creates_series_lazily():
    rec = MetricsRecorder()
    assert "a" not in rec
    rec.record("a", 0.0, 1.0)
    assert "a" in rec
    assert rec.series("a").last() == 1.0


def test_recorder_unknown_series_is_empty():
    rec = MetricsRecorder()
    assert len(rec.series("missing")) == 0


def test_recorder_series_is_registered_not_detached():
    """Regression: fetching an unknown name used to return a detached
    throwaway Series, so samples recorded on it silently vanished."""
    rec = MetricsRecorder()
    series = rec.series("latency")
    series.record(0.0, 1.5)
    assert "latency" in rec
    assert rec.series("latency") is series
    assert rec.series("latency").values == [1.5]
    rec.record("latency", 1.0, 2.5)  # recorder writes land on it too
    assert series.values == [1.5, 2.5]


def test_recorder_summary():
    rec = MetricsRecorder()
    rec.record("a", 0.0, 2.0)
    rec.record("a", 1.0, 4.0)
    rec.record("b", 0.0, 1.0)
    summary = rec.summary(["a"])
    assert summary == {"a": pytest.approx(3.0)}
    assert set(rec.summary()) == {"a", "b"}


# ----------------------------------------------------------------------
# window boundary semantics


def test_window_is_half_open_on_duplicate_boundary_timestamps():
    """Half-open [start, end): duplicates exactly at ``start`` are all
    included, duplicates exactly at ``end`` are all excluded."""
    s = Series("x")
    for t, v in [(0.0, 0.0), (1.0, 1.0), (1.0, 2.0), (2.0, 3.0),
                 (3.0, 4.0), (3.0, 5.0), (4.0, 6.0)]:
        s.record(t, v)
    w = s.window(1.0, 3.0)
    assert w.times == [1.0, 1.0, 2.0]
    assert w.values == [1.0, 2.0, 3.0]


def test_window_empty_when_range_is_before_after_or_degenerate():
    s = Series("x")
    for t in range(3):
        s.record(float(t), float(t))
    assert len(s.window(-5.0, 0.0)) == 0   # all before first sample
    assert len(s.window(2.5, 9.0)) == 0    # all after last sample
    assert len(s.window(1.0, 1.0)) == 0    # degenerate [t, t)
    assert len(s.window(3.0, 1.0)) == 0    # inverted range


def test_window_on_empty_series_is_empty():
    assert len(Series("x").window(0.0, 10.0)) == 0


# ----------------------------------------------------------------------
# the non-registering read path (query-side digest neutrality)


def test_get_does_not_register_unknown_names():
    rec = MetricsRecorder()
    rec.record("a", 0.0, 1.0)
    assert rec.get("missing") is None
    assert "missing" not in rec
    assert rec.get("a") is rec.series("a")


def test_read_window_does_not_register_and_detaches_unknowns():
    rec = MetricsRecorder()
    rec.record("a", 0.0, 1.0)
    rec.record("a", 5.0, 2.0)
    assert rec.read_window("a", 0.0, 1.0).values == [1.0]
    ghost = rec.read_window("missing", 0.0, 10.0)
    assert len(ghost) == 0
    assert "missing" not in rec
    ghost.record(0.0, 1.0)  # detached: must not reach the recorder
    assert "missing" not in rec


def test_summary_does_not_register_phantom_series():
    """Regression: ``summary(names=[...])`` used to call ``series()``
    and register an empty series per unknown name, mutating the
    metrics digest from a pure read path."""
    rec = MetricsRecorder()
    rec.record("a", 0.0, 2.0)
    before = metrics_digest(rec)
    summary = rec.summary(["a", "never_recorded"])
    assert summary == {"a": pytest.approx(2.0), "never_recorded": None}
    assert "never_recorded" not in rec
    assert metrics_digest(rec) == before


def test_summary_empty_series_is_none_not_nan():
    """An empty registered series must summarize as ``None`` (JSON
    null), never as NaN — the socket protocol forbids the bare NaN
    token."""
    rec = MetricsRecorder()
    rec.series("registered_but_empty")
    summary = rec.summary()
    assert summary == {"registered_but_empty": None}
    assert not any(
        isinstance(v, float) and math.isnan(v)
        for v in summary.values()
    )


def test_query_twice_equals_query_never():
    """The digest-neutrality contract behind the fleetd query surface:
    any amount of get/read_window/summary traffic leaves the digest
    byte-identical to an unqueried twin recorder."""
    def build():
        rec = MetricsRecorder()
        for t in range(10):
            rec.record("app/psi_mem_some_avg10", float(t), 0.1 * t)
        return rec

    queried, quiet = build(), build()
    for _ in range(2):
        queried.get("app/psi_mem_some_avg10")
        queried.get("never_recorded")
        queried.read_window("app/psi_mem_some_avg10", 2.0, 7.0)
        queried.read_window("senpai/degraded", 0.0, 10.0)
        queried.summary(["app/psi_mem_some_avg10", "missing"])
        queried.summary()
    assert metrics_digest(queried) == metrics_digest(quiet)
