"""Unit tests for the metrics recorder."""

import math

import pytest

from repro.sim.metrics import MetricsRecorder, Series


def test_series_records_in_order():
    s = Series("x")
    s.record(0.0, 1.0)
    s.record(1.0, 2.0)
    assert len(s) == 2
    assert s.values == [1.0, 2.0]


def test_series_rejects_time_reversal():
    s = Series("x")
    s.record(1.0, 1.0)
    with pytest.raises(ValueError):
        s.record(0.5, 2.0)


def test_series_allows_equal_timestamps():
    s = Series("x")
    s.record(1.0, 1.0)
    s.record(1.0, 2.0)
    assert len(s) == 2


def test_series_statistics():
    s = Series("x")
    for t, v in enumerate([1.0, 2.0, 3.0, 4.0]):
        s.record(float(t), v)
    assert s.mean() == pytest.approx(2.5)
    assert s.min() == 1.0
    assert s.max() == 4.0
    assert s.last() == 4.0
    assert s.percentile(50) == pytest.approx(2.5)


def test_empty_series_statistics_are_nan():
    s = Series("x")
    assert math.isnan(s.mean())
    assert math.isnan(s.last())
    assert math.isnan(s.percentile(90))


def test_series_window_slices_half_open():
    s = Series("x")
    for t in range(5):
        s.record(float(t), float(t))
    w = s.window(1.0, 3.0)
    assert w.times == [1.0, 2.0]


def test_series_as_arrays():
    s = Series("x")
    s.record(0.0, 5.0)
    times, values = s.as_arrays()
    assert times.tolist() == [0.0]
    assert values.tolist() == [5.0]


def test_recorder_creates_series_lazily():
    rec = MetricsRecorder()
    assert "a" not in rec
    rec.record("a", 0.0, 1.0)
    assert "a" in rec
    assert rec.series("a").last() == 1.0


def test_recorder_unknown_series_is_empty():
    rec = MetricsRecorder()
    assert len(rec.series("missing")) == 0


def test_recorder_series_is_registered_not_detached():
    """Regression: fetching an unknown name used to return a detached
    throwaway Series, so samples recorded on it silently vanished."""
    rec = MetricsRecorder()
    series = rec.series("latency")
    series.record(0.0, 1.5)
    assert "latency" in rec
    assert rec.series("latency") is series
    assert rec.series("latency").values == [1.5]
    rec.record("latency", 1.0, 2.5)  # recorder writes land on it too
    assert series.values == [1.5, 2.5]


def test_recorder_summary():
    rec = MetricsRecorder()
    rec.record("a", 0.0, 2.0)
    rec.record("a", 1.0, 4.0)
    rec.record("b", 0.0, 1.0)
    summary = rec.summary(["a"])
    assert summary == {"a": pytest.approx(3.0)}
    assert set(rec.summary()) == {"a", "b"}
