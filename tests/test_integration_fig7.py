"""Figure 7 reproduced exactly: the paper's worked PSI example.

Two processes, execution normalised to 100% and partitioned into four
quarters. In the first quarter only one process stalls at a time and
12.5% of time is ``some``; in the second, 6.25% has both stalled
(``full``) plus 18.75% more with only one stalled.
"""

import pytest

from repro.psi.group import FULL, SOME
from repro.psi.tracker import PsiSystem
from repro.psi.types import Resource, TaskFlags

RUN = TaskFlags.RUNNING
MEM = TaskFlags.MEMSTALL

#: Total timeline length (seconds); percentages map 1:1.
T = 100.0


def build_schedule():
    """The Figure 7 timeline as (time, task, flags) transitions.

    Quarter 1 [0, 25):   A stalls 6.25, B stalls 6.25, disjoint
                         -> some 12.5, full 0.
    Quarter 2 [25, 50):  B stalls the whole quarter, A stalls 6.25
                         inside it -> some 25 (18.75 some-only),
                         full 6.25.
    Quarter 3 [50, 75):  both stall the same 6.25 window
                         -> some 6.25, full 6.25.
    Quarter 4 [75, 100): A stalls 12.5, B runs throughout
                         -> some 12.5, full 0.
    """
    events = []
    # Both processes start running.
    events += [(0.0, "A", RUN), (0.0, "B", RUN)]
    # Q1: disjoint stalls.
    events += [(5.0, "A", MEM), (11.25, "A", RUN)]
    events += [(15.0, "B", MEM), (21.25, "B", RUN)]
    # Q2: B stalled all quarter; A overlaps 6.25 inside.
    events += [(25.0, "B", MEM)]
    events += [(35.0, "A", MEM), (41.25, "A", RUN)]
    events += [(50.0, "B", RUN)]
    # Q3: fully overlapping stalls.
    events += [(60.0, "A", MEM), (60.0, "B", MEM)]
    events += [(66.25, "A", RUN), (66.25, "B", RUN)]
    # Q4: a single some-only stall.
    events += [(80.0, "A", MEM), (92.5, "A", RUN)]
    return events


def run_schedule():
    psi = PsiSystem(ncpu=2)
    psi.add_group("domain")
    tasks = {
        "A": psi.add_task("A", "domain"),
        "B": psi.add_task("B", "domain"),
    }
    for when, name, flags in sorted(build_schedule(), key=lambda e: e[0]):
        tasks[name].set_flags(flags, when)
    psi.tick(T)
    return psi.group("domain")


def test_total_some_matches_figure():
    group = run_schedule()
    # 12.5 + 25 + 6.25 + 12.5 = 56.25% of the timeline.
    assert group.total(Resource.MEMORY, SOME) == pytest.approx(56.25)


def test_total_full_matches_figure():
    group = run_schedule()
    # 6.25 (Q2) + 6.25 (Q3) = 12.5%.
    assert group.total(Resource.MEMORY, FULL) == pytest.approx(12.5)


def test_quarter_by_quarter_accounting():
    psi = PsiSystem(ncpu=2)
    psi.add_group("domain")
    tasks = {
        "A": psi.add_task("A", "domain"),
        "B": psi.add_task("B", "domain"),
    }
    group = psi.group("domain")
    quarters = []
    events = sorted(build_schedule(), key=lambda e: e[0])
    boundaries = [25.0, 50.0, 75.0, 100.0]
    prev_some = prev_full = 0.0
    i = 0
    for boundary in boundaries:
        while i < len(events) and events[i][0] < boundary:
            when, name, flags = events[i]
            tasks[name].set_flags(flags, when)
            i += 1
        group.tick(boundary)
        some = group.total(Resource.MEMORY, SOME)
        full = group.total(Resource.MEMORY, FULL)
        quarters.append((some - prev_some, full - prev_full))
        prev_some, prev_full = some, full

    q1, q2, q3, q4 = quarters
    assert q1 == (pytest.approx(12.5), pytest.approx(0.0))
    assert q2 == (pytest.approx(25.0), pytest.approx(6.25))
    # Q2's some-only share is the paper's "in addition, 18.75%".
    assert q2[0] - q2[1] == pytest.approx(18.75)
    assert q3 == (pytest.approx(6.25), pytest.approx(6.25))
    assert q4 == (pytest.approx(12.5), pytest.approx(0.0))


def test_some_never_below_full_at_any_quarter():
    group = run_schedule()
    assert group.total(Resource.MEMORY, SOME) >= group.total(
        Resource.MEMORY, FULL
    )
