"""The read-only query surface: summaries, rollups, envelopes, waves.

Covers the fleetd phase-2 contract end to end:

* :class:`SignalSummary` is a fixed-size mergeable reduction — merge
  is associative (exactly for count/min/max/last, to float tolerance
  for the mean) with the empty summary as identity, so sharded
  aggregation can fold partial summaries in any grouping;
* host → region → fleet rollups through a live engine are
  **digest-neutral**: querying a fleet N times leaves every host's
  metrics byte-identical to never querying it (the foundational
  bugfix: reads must not register phantom series);
* envelopes are versioned, validated on read, and NaN-free on the
  wire;
* wave planning is region-aware: no region is ever all-canary.
"""

import json

import pytest

from repro.fleetd.engine import FleetdConfig, FleetdEngine
from repro.fleetd.health import (
    HealthGateConfig,
    HealthSample,
    evaluate_gate,
    sample_host,
)
from repro.fleetd.rollout import RolloutConfig, plan_waves
from repro.fleetd.rollup import (
    ROLLUP_SCHEMA_VERSION,
    ROLLUP_SIGNALS,
    RollupError,
    SignalSummary,
    encode_envelope,
    parse_fleet_rollup,
    parse_top_report,
)
from repro.sim.host import HostConfig
from repro.sim.metrics import Series, metrics_digest

MB = 1 << 20


def make_engine(regions=("east", "west", "east")) -> FleetdEngine:
    engine = FleetdEngine(FleetdConfig(
        seed=11,
        base_config=HostConfig(
            ram_gb=0.25, page_size_bytes=1 * MB, ncpu=4,
        ),
        rollout=RolloutConfig(
            canary_frac=0.34, wave_frac=1.0,
            baseline_s=20.0, soak_s=20.0,
        ),
        checkpoint_every_s=15.0,
    ))
    for i, region in enumerate(regions):
        engine.register(
            f"h{i}", "Feed" if i % 2 == 0 else "Web",
            size_scale=0.003, region=region,
        )
    return engine


def summary_of(samples) -> SignalSummary:
    series = Series("x")
    for t, v in samples:
        series.record(t, v)
    return SignalSummary.of(series)


# ----------------------------------------------------------------------
# SignalSummary: reduction and merge algebra


def test_summary_of_series_reduces_all_aggregates():
    s = summary_of([(0.0, 4.0), (1.0, 2.0), (2.0, 6.0)])
    assert s.count == 3
    assert s.mean == pytest.approx(4.0)
    assert s.min == 2.0
    assert s.max == 6.0
    assert s.last == 6.0
    assert s.last_t == 2.0


def test_empty_summary_is_merge_identity_and_serializes_null():
    empty = SignalSummary()
    full = summary_of([(0.0, 1.0), (1.0, 3.0)])
    assert empty.merge(full) == full
    assert full.merge(empty) == full
    assert empty.to_json() == {
        "samples": 0, "mean": None, "min": None,
        "max": None, "last": None,
    }


def test_merge_is_associative():
    """merge(a, merge(b, c)) == merge(merge(a, b), c): exactly for
    count/min/max/last, to float tolerance for the mean (float sums
    are not bitwise-associative)."""
    a = summary_of([(0.0, 5.0), (1.0, 0.3)])
    b = summary_of([(0.5, 2.7), (2.0, 9.1), (3.0, 1.1)])
    c = summary_of([(4.0, 7.7)])
    left = a.merge(b).merge(c)
    right = a.merge(b.merge(c))
    assert left.count == right.count == 6
    assert left.min == right.min == 0.3
    assert left.max == right.max == 9.1
    assert left.last == right.last == 7.7
    assert left.last_t == right.last_t == 4.0
    assert left.mean == pytest.approx(right.mean)


def test_merge_last_follows_the_latest_timestamp():
    early = summary_of([(0.0, 1.0)])
    late = summary_of([(5.0, 9.0)])
    assert early.merge(late).last == 9.0
    assert late.merge(early).last == 9.0
    # A timestamp tie deterministically picks the merged-in side.
    tie = summary_of([(5.0, 2.0)])
    assert late.merge(tie).last == 2.0


# ----------------------------------------------------------------------
# rollups through a live engine


def test_fleet_rollup_folds_host_region_fleet():
    with make_engine() as engine:
        engine.run_ticks(40)
        rollup = engine.fleet_rollup(window_s=30.0)
        assert {h.host_id for h in rollup.hosts} == {"h0", "h1", "h2"}
        assert set(rollup.regions) == {"east", "west"}
        assert rollup.regions["east"].hosts == 2
        assert rollup.regions["west"].hosts == 1
        for signal in ROLLUP_SIGNALS:
            fleet_count = rollup.signals[signal].count
            assert fleet_count == sum(
                r.signals[signal].count
                for r in rollup.regions.values()
            )
            assert fleet_count == sum(
                h.signals[signal].count for h in rollup.hosts
            )
        # Hosts ticked 40s with a 30s window: pressure samples exist.
        assert rollup.signals["psi_mem_some"].count > 0


def test_rollup_queries_are_digest_neutral():
    """Query-twice == query-never, at the engine level: the rollup
    engine must never register a series (e.g. ``senpai/degraded`` on
    a host whose controller never recorded it)."""
    with make_engine() as queried, make_engine() as quiet:
        queried.run_ticks(40)
        quiet.run_ticks(40)
        for _ in range(3):
            queried.fleet_rollup(window_s=30.0)
            queried.top_hosts("refault_rate", n=3, window_s=30.0)
        assert queried.fleet_digest() == quiet.fleet_digest()


def test_sampling_health_twice_keeps_digest_identical():
    """The regression the ISSUE names: ``sample_host`` used to
    register phantom series (a gswap host has no ``senpai/degraded``)
    and mutate the digest from a read path."""
    with make_engine() as sampled, make_engine() as untouched:
        sampled.run_ticks(30)
        untouched.run_ticks(30)
        entry = sampled.registry.get("h0")
        for _ in range(2):
            sample_host(entry.host, "app", 0.0, 30.0,
                        quarantined_now=False)
        assert (
            metrics_digest(entry.host.metrics)
            == metrics_digest(untouched.registry.get("h0").host.metrics)
        )
        assert sampled.fleet_digest() == untouched.fleet_digest()


def test_top_ranks_by_window_mean_and_validates_signal():
    with make_engine() as engine:
        engine.run_ticks(40)
        report = engine.top_hosts("psi_mem_some", n=2, window_s=30.0)
        assert report["kind"] == "fleetd-top"
        assert len(report["hosts"]) == 2
        means = [h["mean"] for h in report["hosts"]]
        assert all(m is not None for m in means)
        assert means == sorted(means, reverse=True)
        with pytest.raises(RollupError, match="unknown signal"):
            engine.top_hosts("typo_signal")
        with pytest.raises(RollupError, match="at least 1"):
            engine.top_hosts("psi_mem_some", n=0)


def test_rollup_window_must_be_positive():
    with make_engine() as engine:
        with pytest.raises(RollupError, match="window_s"):
            engine.fleet_rollup(window_s=0.0)


# ----------------------------------------------------------------------
# envelopes: encode / validate-on-read


def test_fleet_rollup_envelope_round_trips():
    with make_engine() as engine:
        engine.run_ticks(40)
        doc = json.loads(
            encode_envelope(engine.fleet_rollup(30.0).to_json())
        )
        parsed = parse_fleet_rollup(doc)
        assert parsed["schema_version"] == ROLLUP_SCHEMA_VERSION
        assert parsed["fleet"]["hosts"] == 3
        top_doc = json.loads(encode_envelope(
            engine.top_hosts("swap_bytes", n=3, window_s=30.0)
        ))
        assert parse_top_report(top_doc)["signal"] == "swap_bytes"


def test_encode_envelope_rejects_non_finite_numbers():
    with pytest.raises(ValueError, match="non-finite"):
        encode_envelope({"mean": float("nan")})
    with pytest.raises(ValueError, match="non-finite"):
        encode_envelope({"deep": [{"x": float("inf")}]})


def test_parse_rejects_foreign_and_non_finite_documents():
    with pytest.raises(ValueError, match="JSON object"):
        parse_fleet_rollup("nope")
    with pytest.raises(ValueError, match="schema_version"):
        parse_fleet_rollup({"schema_version": 99})
    with pytest.raises(ValueError, match="kind"):
        parse_fleet_rollup({
            "schema_version": ROLLUP_SCHEMA_VERSION,
            "kind": "fleetd-rollout",
        })
    with pytest.raises(ValueError, match="host list"):
        parse_fleet_rollup({
            "schema_version": ROLLUP_SCHEMA_VERSION,
            "kind": "fleetd-rollup",
        })
    with pytest.raises(ValueError, match="non-finite"):
        parse_fleet_rollup({
            "schema_version": ROLLUP_SCHEMA_VERSION,
            "kind": "fleetd-rollup",
            "hosts": [{"mean": float("nan")}],
            "fleet": {},
        })
    with pytest.raises(ValueError, match="unknown signal"):
        parse_top_report({
            "schema_version": ROLLUP_SCHEMA_VERSION,
            "kind": "fleetd-top",
            "hosts": [],
            "signal": "bogus",
        })


def test_empty_fleet_rollup_is_valid_and_nan_free():
    with make_engine(regions=()) as engine:
        engine.run_ticks(5)
        doc = json.loads(
            encode_envelope(engine.fleet_rollup(30.0).to_json())
        )
        parsed = parse_fleet_rollup(doc)
        assert parsed["fleet"]["hosts"] == 0
        for summary in parsed["fleet"]["signals"].values():
            assert summary == {
                "samples": 0, "mean": None, "min": None,
                "max": None, "last": None,
            }


# ----------------------------------------------------------------------
# region-aware wave planning


def test_plan_waves_no_region_is_all_canary():
    regions = {"a": "east", "b": "east", "c": "west", "d": "west",
               "e": "west"}
    waves = plan_waves(("a", "b", "c", "d", "e"), 0.4, 0.5,
                       regions=regions)
    canary = set(waves[0])
    for region in ("east", "west"):
        members = {h for h, r in regions.items() if r == region}
        assert members - canary, f"region {region} went all-canary"
    assert sorted(h for w in waves for h in w) == list("abcde")


def test_plan_waves_canary_draws_round_robin_across_regions():
    regions = {"a": "east", "b": "east", "c": "east",
               "d": "west", "e": "west", "f": "west"}
    waves = plan_waves(("a", "b", "c", "d", "e", "f"), 0.34, 1.0,
                       regions=regions)
    # Target 2 canaries: one from each region, not two from east.
    assert waves[0] == ["a", "d"]


def test_plan_waves_single_host_regions_fall_back_to_first_host():
    regions = {"a": "r1", "b": "r2", "c": "r3"}
    waves = plan_waves(("a", "b", "c"), 0.5, 1.0, regions=regions)
    assert waves[0] == ["a"]
    assert sorted(h for w in waves for h in w) == ["a", "b", "c"]


def test_plan_waves_single_region_matches_legacy_plan():
    """One distinct region (or no region map) must keep the legacy
    order-preserving split byte-identical — existing fleets see no
    wave-shape change."""
    hosts = ("a", "b", "c", "d")
    legacy = plan_waves(hosts, 0.25, 0.5)
    assert plan_waves(hosts, 0.25, 0.5,
                      regions={h: "only" for h in hosts}) == legacy
    assert plan_waves(hosts, 0.25, 0.5, regions=None) == legacy


def test_region_aware_rollout_keeps_east_partially_on_incumbent():
    """End to end: a rollout over a two-region fleet canaries without
    putting either multi-host region fully on the candidate."""
    with make_engine(regions=("east", "east", "west", "west")) as engine:
        engine.run_ticks(25)
        from repro.fleetd.policy import PolicySpec
        engine.begin_rollout(PolicySpec.make("autotune"))
        engine.run_ticks(1)
        canary = engine.active.result.waves[0].host_ids
        regions = {
            h: engine.registry.get(h).region for h in canary
        }
        for region in ("east", "west"):
            in_region = [
                e for e in engine.registry.values()
                if e.region == region
            ]
            canaried = [h for h, r in regions.items() if r == region]
            assert len(canaried) < len(in_region)
        engine.run_ticks(60)
        assert engine.rollout_result(1).status == "succeeded"


# ----------------------------------------------------------------------
# the health gate names starved signals


def test_gate_names_the_signal_with_no_data():
    base = HealthSample(samples=5)
    observed = HealthSample(
        samples=3, psi_mem_samples=0, psi_io_samples=2,
        refault_samples=1,
    )
    verdict = evaluate_gate("h0", base, observed, HealthGateConfig())
    assert not verdict.passed
    assert any(
        "no psi_mem_some samples" in r for r in verdict.reasons
    )
    assert not any(
        "psi_io_some samples" in r for r in verdict.reasons
    )


def test_gate_skips_per_signal_check_when_counts_untracked():
    """Hand-built samples (counts default to None) keep the legacy
    pooled-count behaviour: no fabricated starvation reasons."""
    base = HealthSample(samples=5)
    observed = HealthSample(samples=5)
    assert evaluate_gate(
        "h0", base, observed, HealthGateConfig()
    ).passed


def test_live_sample_host_tracks_per_signal_counts():
    with make_engine() as engine:
        engine.run_ticks(30)
        entry = engine.registry.get("h0")
        sample = sample_host(entry.host, "app", 0.0, 30.0)
        assert sample.psi_mem_samples is not None
        assert sample.psi_mem_samples > 0
        assert sample.samples == (
            sample.psi_mem_samples + sample.psi_io_samples
            + sample.refault_samples
        )
