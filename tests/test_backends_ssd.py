"""Unit tests for the SSD catalog and SSD swap backend."""

import numpy as np
import pytest

from repro.backends.ssd import (
    SSD_CATALOG,
    SsdSwapBackend,
    SwapFullError,
    make_ssd_device,
)

PAGE = 4096


def test_catalog_has_seven_devices():
    assert sorted(SSD_CATALOG) == list("ABCDEFG")


def test_endurance_grows_with_generation():
    values = [SSD_CATALOG[k].endurance_pbw for k in "ABCDEFG"]
    assert values == sorted(values)
    assert values[-1] / values[0] >= 10


def test_read_latency_spans_papers_range():
    # Figure 5: 9.3 ms down to 470 us.
    assert SSD_CATALOG["A"].read_p99_us == pytest.approx(9300.0)
    assert SSD_CATALOG["G"].read_p99_us == pytest.approx(470.0)
    lats = [SSD_CATALOG[k].read_p99_us for k in "ABCDEFG"]
    assert lats == sorted(lats, reverse=True)


def test_fig12_fast_vs_slow_devices():
    # "fast SSD" is C, "slow SSD" is B.
    assert SSD_CATALOG["C"].read_p99_us < SSD_CATALOG["B"].read_p99_us


def test_make_ssd_device_unknown_model():
    with pytest.raises(KeyError):
        make_ssd_device("Z", np.random.default_rng(0))


def test_device_spec_p50_below_p99():
    spec = SSD_CATALOG["C"].device_spec()
    assert spec.read_latency_p50_us < SSD_CATALOG["C"].read_p99_us


def make_backend(capacity_pages=16, model="C"):
    return SsdSwapBackend(
        model, np.random.default_rng(0), capacity_bytes=capacity_pages * PAGE
    )


def test_store_accounts_capacity_and_endurance():
    backend = make_backend()
    latency = backend.store(PAGE, 3.0, now=0.0)
    assert latency > 0.0
    assert backend.stored_bytes == PAGE
    assert backend.endurance_bytes_written == PAGE
    assert backend.free_bytes == 15 * PAGE


def test_store_beyond_capacity_raises():
    backend = make_backend(capacity_pages=1)
    backend.store(PAGE, 3.0, now=0.0)
    with pytest.raises(SwapFullError):
        backend.store(PAGE, 3.0, now=0.0)


def test_free_releases_space_but_not_endurance():
    backend = make_backend()
    backend.store(PAGE, 3.0, now=0.0)
    backend.free(PAGE, 3.0)
    assert backend.stored_bytes == 0
    assert backend.endurance_bytes_written == PAGE  # wear is permanent


def test_load_counts_reads():
    backend = make_backend()
    backend.store(PAGE, 3.0, now=0.0)
    latency = backend.load(PAGE, 3.0, now=1.0)
    assert latency > 0.0
    assert backend.stats.reads == 1
    assert backend.stats.bytes_read == PAGE


def test_wear_fraction():
    backend = make_backend()
    budget = SSD_CATALOG["C"].endurance_pbw * 1e15
    backend.endurance_bytes_written = int(budget / 2)
    assert backend.wear_fraction == pytest.approx(0.5)


def test_swap_blocks_on_io():
    assert make_backend().blocks_on_io


def test_no_dram_overhead():
    assert make_backend().dram_overhead_bytes == 0
