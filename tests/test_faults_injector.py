"""FaultInjector: plans must reach every public seam and fully recover."""

import pytest

from repro.faults.injector import FaultInjector, _device_fault_states
from repro.faults.plan import FaultEvent, FaultPlan
from repro.kernel.controlfs import ControlFileError
from repro.workloads.access import HeatBands
from repro.workloads.apps import AppProfile
from repro.workloads.base import Workload

from tests.helpers import small_host

MB = 1 << 20
GB = 1 << 30


def _profile(npages=100):
    return AppProfile(
        name="app", size_gb=npages * MB / GB, anon_frac=0.6,
        bands=HeatBands(0.3, 0.1, 0.1), compress_ratio=3.0,
        nthreads=2, cpu_cores=1.0,
    )


def _host_with(plan, backend="ssd"):
    host = small_host(ram_gb=1.0, backend=backend)
    host.add_workload(Workload, profile=_profile(), name="app")
    injector = host.add_controller(FaultInjector(plan))
    return host, injector


def _plan(*events, duration_s=100.0):
    return FaultPlan(seed=0, duration_s=duration_s, events=tuple(events))


def test_device_fault_states_walker_finds_all_seams():
    for backend in ("ssd", "zswap", "tiered"):
        host = small_host(ram_gb=1.0, backend=backend)
        states = _device_fault_states(host.swap_backend)
        expected = 2 if backend == "tiered" else 1
        assert len(states) == expected, backend
        assert _device_fault_states(host.fs)


def test_io_error_window_sets_and_clears_rate():
    plan = _plan(FaultEvent(kind="io_error", target="swap", start_s=10.0,
                            duration_s=20.0, severity=0.8))
    host, injector = _host_with(plan)
    state = _device_fault_states(host.swap_backend)[0]

    injector.poll(host, 5.0)
    assert state.io_error_rate == 0.0
    injector.poll(host, 15.0)
    assert state.io_error_rate == 0.8
    injector.poll(host, 35.0)
    assert state.io_error_rate == 0.0
    assert injector.injected == {"io_error": 1}


def test_outage_and_brownout_windows():
    plan = _plan(
        FaultEvent(kind="outage", target="swap", start_s=10.0,
                   duration_s=10.0),
        FaultEvent(kind="brownout", target="fs", start_s=10.0,
                   duration_s=10.0, severity=1.0),
    )
    host, injector = _host_with(plan)
    swap_state = _device_fault_states(host.swap_backend)[0]
    fs_state = _device_fault_states(host.fs)[0]

    injector.poll(host, 12.0)
    assert not swap_state.available
    assert fs_state.latency_multiplier == pytest.approx(10.0)
    injector.poll(host, 25.0)
    assert swap_state.available
    assert fs_state.latency_multiplier == 1.0


def test_overlapping_io_error_windows_take_max_rate():
    plan = _plan(
        FaultEvent(kind="io_error", target="swap", start_s=0.0,
                   duration_s=50.0, severity=0.3),
        FaultEvent(kind="io_error", target="swap", start_s=10.0,
                   duration_s=10.0, severity=0.9),
    )
    host, injector = _host_with(plan)
    state = _device_fault_states(host.swap_backend)[0]

    injector.poll(host, 5.0)
    assert state.io_error_rate == 0.3
    injector.poll(host, 15.0)
    assert state.io_error_rate == 0.9
    injector.poll(host, 25.0)  # inner window over, outer still on
    assert state.io_error_rate == 0.3


def test_psi_freeze_window_freezes_and_thaws():
    plan = _plan(FaultEvent(kind="psi_freeze", target="host", start_s=10.0,
                            duration_s=20.0))
    host, injector = _host_with(plan)

    injector.poll(host, 15.0)
    assert host.psi.telemetry_frozen
    assert host.controlfs.faults.frozen_pressure
    assert host.psi.telemetry_age_s(25.0) == pytest.approx(10.0)
    injector.poll(host, 35.0)
    assert not host.psi.telemetry_frozen
    assert host.controlfs.faults.healthy


def test_malformed_pressure_window():
    plan = _plan(FaultEvent(kind="malformed_pressure", target="host",
                            start_s=10.0, duration_s=10.0))
    host, injector = _host_with(plan)
    injector.poll(host, 12.0)
    text = host.controlfs.read("app/memory.pressure", now=12.0)
    assert "NaN" in text or "garbage" in text
    injector.poll(host, 25.0)
    text = host.controlfs.read("app/memory.pressure", now=25.0)
    assert "garbage" not in text


def test_controlfs_error_window():
    plan = _plan(FaultEvent(kind="controlfs_error", target="host",
                            start_s=10.0, duration_s=10.0))
    host, injector = _host_with(plan)
    injector.poll(host, 12.0)
    with pytest.raises(ControlFileError):
        host.controlfs.read("app/memory.pressure", now=12.0)
    injector.poll(host, 25.0)
    host.controlfs.read("app/memory.pressure", now=25.0)  # healthy


def test_wear_event_consumes_endurance_budget():
    plan = _plan(FaultEvent(kind="wear", target="swap", start_s=10.0,
                            duration_s=0.0, severity=0.1))
    host, injector = _host_with(plan, backend="ssd")

    before = host.swap_backend.endurance_bytes_written
    injector.poll(host, 5.0)
    assert host.swap_backend.endurance_bytes_written == before
    injector.poll(host, 10.0)
    consumed = host.swap_backend.endurance_bytes_written - before
    assert consumed == int(0.1 * host.swap_backend.spec.endurance_pbw * 1e15)
    # Fires exactly once.
    injector.poll(host, 20.0)
    assert host.swap_backend.endurance_bytes_written - before == consumed


def test_restart_and_spike_fire_once_via_public_hooks():
    plan = _plan(
        FaultEvent(kind="restart", target="app", start_s=10.0,
                   duration_s=0.0),
        FaultEvent(kind="spike", target="app", start_s=20.0,
                   duration_s=0.0, severity=0.2),
    )
    host, injector = _host_with(plan)
    workload = host.workload("app")
    npages = len(workload.pages)

    injector.poll(host, 10.0)
    assert injector.injected.get("restart") == 1
    injector.poll(host, 20.0)
    assert injector.injected.get("spike") == 1
    assert workload._pending_spike_pages == int(0.2 * npages)
    injector.poll(host, 30.0)
    assert injector.injected == {"restart": 1, "spike": 1}


def test_instant_event_on_missing_target_is_skipped():
    plan = _plan(FaultEvent(kind="restart", target="ghost", start_s=10.0,
                            duration_s=0.0))
    host, injector = _host_with(plan)

    injector.poll(host, 10.0)
    assert injector.skipped == 1
    assert injector.injected == {}


def test_edges_recorded_on_metrics():
    plan = _plan(FaultEvent(kind="io_error", target="swap", start_s=10.0,
                            duration_s=10.0, severity=0.5))
    host, injector = _host_with(plan)

    injector.poll(host, 5.0)
    injector.poll(host, 12.0)
    injector.poll(host, 25.0)
    edge = host.metrics.series("faults/io_error")
    assert list(edge.values) == [1.0, 0.0]
    active = host.metrics.series("faults/active")
    assert list(active.values) == [0.0, 1.0, 0.0]


def test_full_run_recovers_all_seams():
    """After a generated schedule ends, every seam reads healthy."""
    plan = FaultPlan.generate(9, 600.0, extra_events=8)
    host, injector = _host_with(plan)
    host.run(600.0)

    for state in (_device_fault_states(host.swap_backend)
                  + _device_fault_states(host.fs)):
        assert state.healthy
    assert host.controlfs.faults.healthy
    assert not host.psi.telemetry_frozen
