"""End-to-end tests of the whole-program flow analysis (TMO009-012).

The flowpkg fixture package seeds one bug per flow rule, each crossing
a function or module boundary so no per-file rule could see it; the
assertions pin exact rule ids and line numbers.
"""

import subprocess
from pathlib import Path
from textwrap import dedent

from repro.lint import cli
from repro.lint.flow import analyze_flow, flow_rule_ids

FLOWPKG = Path("tests/lint_fixtures/flowpkg")
FLOW_RULES = sorted(flow_rule_ids())


def _findings(paths, select=FLOW_RULES, cache_path=None):
    result = analyze_flow(paths, select=select, cache_path=cache_path)
    return [
        (v.rule_id, v.path.rpartition("/")[2], v.line)
        for v in result.violations
    ]


# ----------------------------------------------------------------------
# the fixture package


def test_fixture_package_findings_exact():
    assert _findings([FLOWPKG]) == [
        ("TMO009", "consume.py", 9),   # pages + seconds across modules
        ("TMO010", "consume.py", 18),  # pages into a bytes parameter
        ("TMO011", "consume.py", 22),  # pages bound to *_bytes name
        ("TMO012", "telemetry.py", 19),  # wall clock at the sink
        ("TMO012", "telemetry.py", 27),  # taint through report()
    ]


def test_fixture_messages_name_the_units_and_sources():
    result = analyze_flow([FLOWPKG], select=FLOW_RULES)
    by_rule = {v.rule_id: v.message for v in result.violations}
    assert "'pages'" in by_rule["TMO009"] and "'s'" in by_rule["TMO009"]
    assert "'limit_bytes'" in by_rule["TMO010"]
    assert "'cap_bytes'" in by_rule["TMO011"]
    assert "time.time" in by_rule["TMO012"]


def test_select_narrows_flow_rules():
    only_taint = _findings([FLOWPKG], select=["TMO012"])
    assert [rule for rule, _, _ in only_taint] == ["TMO012", "TMO012"]


# ----------------------------------------------------------------------
# suppression and scope plumbing


def test_inline_ignore_suppresses_flow_finding(tmp_path):
    target = tmp_path / "solo.py"
    target.write_text(dedent("""\
        def dram_bytes():
            total_bytes = 4096
            return total_bytes


        def use():
            cap_pages = dram_bytes()  # lint: ignore[TMO011]
            return cap_pages
    """))
    assert _findings([target]) == []


def test_skip_file_suppresses_flow_findings(tmp_path):
    target = tmp_path / "skipme.py"
    target.write_text(dedent("""\
        # lint: skip-file
        def dram_bytes():
            total_bytes = 4096
            return total_bytes


        def use():
            cap_pages = dram_bytes()
            return cap_pages
    """))
    assert _findings([target]) == []


def test_unparseable_file_reports_tmo000(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n")
    result = analyze_flow([bad], select=FLOW_RULES)
    assert [v.rule_id for v in result.violations] == ["TMO000"]


# ----------------------------------------------------------------------
# the on-disk cache


def _write_pkg(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "a.py").write_text(dedent("""\
        def dram_bytes():
            total_bytes = 4096
            return total_bytes
    """))
    (pkg / "b.py").write_text(dedent("""\
        from pkg.a import dram_bytes


        def use():
            cap_pages = dram_bytes()
            return cap_pages
    """))
    return pkg


def test_cache_hits_and_body_edit_invalidation(tmp_path):
    pkg = _write_pkg(tmp_path)
    cache = tmp_path / "cache.json"

    first = analyze_flow([pkg], select=FLOW_RULES, cache_path=cache)
    assert (first.cache_hits, first.cache_misses) == (0, 3)
    assert [(v.rule_id, v.line) for v in first.violations] == [("TMO011", 5)]

    second = analyze_flow([pkg], select=FLOW_RULES, cache_path=cache)
    assert (second.cache_hits, second.cache_misses) == (3, 0)
    assert [(v.rule_id, v.line) for v in second.violations] == [
        ("TMO011", 5)
    ]

    # Fixing b's body re-analyses only b: the interface is unchanged,
    # so a.py and __init__.py stay cached.
    (pkg / "b.py").write_text(dedent("""\
        from pkg.a import dram_bytes


        def use():
            cap_bytes = dram_bytes()
            return cap_bytes
    """))
    third = analyze_flow([pkg], select=FLOW_RULES, cache_path=cache)
    assert (third.cache_hits, third.cache_misses) == (2, 1)
    assert third.violations == []


def test_cache_interface_change_reanalyses_everything(tmp_path):
    pkg = _write_pkg(tmp_path)
    cache = tmp_path / "cache.json"
    analyze_flow([pkg], select=FLOW_RULES, cache_path=cache)

    # Renaming a function changes the project interface: every cached
    # summary may hold stale callee keys, so all files re-analyse.
    (pkg / "a.py").write_text(dedent("""\
        def dram_total_bytes():
            total_bytes = 4096
            return total_bytes
    """))
    rerun = analyze_flow([pkg], select=FLOW_RULES, cache_path=cache)
    assert rerun.cache_hits == 0
    assert rerun.cache_misses == 3


# ----------------------------------------------------------------------
# CLI integration


def _git(repo, *args):
    subprocess.run(
        ["git", "-c", "user.email=t@example.com", "-c", "user.name=t",
         *args],
        cwd=repo, check=True, capture_output=True,
    )


def test_cli_changed_limits_reporting(tmp_path, monkeypatch, capsys):
    repo = tmp_path / "repo"
    src = repo / "src"
    src.mkdir(parents=True)
    committed = src / "committed.py"
    committed.write_text(
        "import time\n\n\ndef t():\n    return time.time()\n"
    )
    _git(repo, "init", "-q")
    _git(repo, "add", ".")
    _git(repo, "commit", "-q", "-m", "seed")
    monkeypatch.chdir(repo)

    # Nothing changed: trivially clean, the committed finding is not
    # re-litigated.
    assert cli.main(["--changed", "src"]) == 0
    capsys.readouterr()

    fresh = src / "fresh.py"
    fresh.write_text(
        "import time\n\n\ndef u():\n    return time.time()\n"
    )
    code = cli.main(["--flow", "--no-cache", "--changed", "src"])
    out = capsys.readouterr().out
    assert code == 1
    assert "fresh.py" in out
    assert "committed.py" not in out


def test_cli_flow_writes_cache(tmp_path, capsys):
    cache = tmp_path / "cache.json"
    code = cli.main([
        "--flow", "--cache", str(cache), "--quiet",
        str(FLOWPKG / "convert.py"),
    ])
    capsys.readouterr()
    assert code == 0  # convert.py alone is clean
    assert cache.exists()


# ----------------------------------------------------------------------
# the repo's own tree must be clean under the flow pass


def test_repo_tree_is_flow_clean():
    result = analyze_flow(
        [Path("src"), Path("benchmarks"), Path("examples")]
    )
    assert [v.format_text() for v in result.violations] == []


def test_cli_flow_on_repo_tree_exits_zero(tmp_path, capsys):
    code = cli.main([
        "--flow", "--cache", str(tmp_path / "cache.json"), "--quiet",
        "src", "benchmarks", "examples",
    ])
    capsys.readouterr()
    assert code == 0
