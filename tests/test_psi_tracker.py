"""Unit tests for the PSI task registry and hierarchy routing."""

import pytest

from repro.psi.group import SOME
from repro.psi.tracker import PsiSystem
from repro.psi.types import Resource, TaskFlags

MEM = TaskFlags.MEMSTALL
RUN = TaskFlags.RUNNING
NONE = TaskFlags.NONE


def test_system_group_always_exists():
    psi = PsiSystem(ncpu=4)
    assert psi.group("system") is psi.system


def test_add_group_and_task():
    psi = PsiSystem(ncpu=4)
    psi.add_group("web")
    task = psi.add_task("web/t0", "web")
    assert task.flags == NONE


def test_duplicate_group_rejected():
    psi = PsiSystem(ncpu=4)
    psi.add_group("web")
    with pytest.raises(ValueError):
        psi.add_group("web")


def test_unknown_parent_rejected():
    psi = PsiSystem(ncpu=4)
    with pytest.raises(KeyError):
        psi.add_group("child", parent="ghost")


def test_duplicate_task_rejected():
    psi = PsiSystem(ncpu=4)
    psi.add_group("web")
    psi.add_task("t", "web")
    with pytest.raises(ValueError):
        psi.add_task("t", "web")


def test_stall_propagates_to_system_group():
    psi = PsiSystem(ncpu=4)
    psi.add_group("web")
    task = psi.add_task("t", "web")
    task.set_flags(MEM, 0.0)
    task.set_flags(NONE, 2.0)
    assert psi.some_total("web", Resource.MEMORY) == pytest.approx(2.0)
    assert psi.some_total("system", Resource.MEMORY) == pytest.approx(2.0)


def test_stall_propagates_through_parent_chain():
    psi = PsiSystem(ncpu=4)
    psi.add_group("slice")
    psi.add_group("slice/web", parent="slice")
    task = psi.add_task("t", "slice/web")
    task.set_flags(MEM, 0.0)
    task.set_flags(NONE, 1.0)
    assert psi.some_total("slice/web", Resource.MEMORY) == pytest.approx(1.0)
    assert psi.some_total("slice", Resource.MEMORY) == pytest.approx(1.0)
    assert psi.some_total("system", Resource.MEMORY) == pytest.approx(1.0)


def test_sibling_group_unaffected():
    psi = PsiSystem(ncpu=4)
    psi.add_group("a")
    psi.add_group("b")
    task = psi.add_task("t", "a")
    task.set_flags(MEM, 0.0)
    task.set_flags(NONE, 1.0)
    assert psi.some_total("b", Resource.MEMORY) == 0.0


def test_system_some_is_union_not_sum():
    # Two groups stalled over the same interval: the machine-wide some
    # counts the union of the wall time, not the sum of task stalls.
    psi = PsiSystem(ncpu=4)
    psi.add_group("a")
    psi.add_group("b")
    ta = psi.add_task("ta", "a")
    tb = psi.add_task("tb", "b")
    ta.set_flags(MEM, 0.0)
    tb.set_flags(MEM, 0.0)
    ta.set_flags(NONE, 2.0)
    tb.set_flags(NONE, 2.0)
    assert psi.some_total("system", Resource.MEMORY) == pytest.approx(2.0)


def test_redundant_set_flags_is_a_noop():
    psi = PsiSystem(ncpu=4)
    psi.add_group("g")
    task = psi.add_task("t", "g")
    task.set_flags(RUN, 0.0)
    task.set_flags(RUN, 1.0)  # no transition
    task.set_flags(NONE, 2.0)
    assert psi.some_total("g", Resource.MEMORY) == 0.0


def test_remove_task_settles_to_idle():
    psi = PsiSystem(ncpu=4)
    psi.add_group("g")
    task = psi.add_task("t", "g")
    task.set_flags(MEM, 0.0)
    psi.remove_task("t", 3.0)
    psi.tick(10.0)
    # Stall stopped at removal.
    assert psi.some_total("g", Resource.MEMORY) == pytest.approx(3.0)
    with pytest.raises(KeyError):
        psi.task("t")


def test_tick_advances_all_groups():
    psi = PsiSystem(ncpu=2)
    psi.add_group("g")
    task = psi.add_task("t", "g")
    task.set_flags(MEM, 0.0)
    psi.tick(5.0)
    assert psi.group("g").total(Resource.MEMORY, SOME) == pytest.approx(5.0)
