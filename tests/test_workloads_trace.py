"""Unit tests for access-trace recording and replay."""

import pytest

from repro.workloads.access import HeatBands
from repro.workloads.apps import AppProfile
from repro.workloads.trace import (
    AccessTrace,
    RecordingWorkload,
    ReplayWorkload,
)

from tests.helpers import make_mm

MB = 1 << 20
_GB = 1 << 30
PAGE = 256 * 1024


def profile(npages=200, growth=0.0) -> AppProfile:
    return AppProfile(
        name="traced",
        size_gb=npages * PAGE / _GB,
        anon_frac=0.6,
        bands=HeatBands(0.4, 0.1, 0.1),
        compress_ratio=3.0,
        nthreads=2,
        cpu_cores=1.0,
        growth_gb_per_hour=growth,
    )


def record(n_ticks=20, **profile_kwargs) -> AccessTrace:
    mm = make_mm()
    mm.create_cgroup("app")
    recorder = RecordingWorkload(mm, profile(**profile_kwargs), "app",
                                 seed=9)
    recorder.start(0.0, size_scale=1.0)
    for i in range(n_ticks):
        recorder.tick(float(i) * 6.0, 6.0)
    return recorder.trace


def test_trace_captures_every_tick():
    trace = record(n_ticks=20)
    assert len(trace) == 20
    assert trace.total_touches > 0
    assert trace.profile.name == "traced"


def test_trace_records_growth():
    # 10 pages/s of growth at 256 KiB pages.
    growth_gb_h = 3600 * 10 * PAGE / _GB
    trace = record(n_ticks=5, growth=growth_gb_h)
    assert sum(e.grown for e in trace.events) == 5 * 6 * 10


def test_replay_touches_exactly_the_recorded_pages():
    trace = record(n_ticks=15)
    mm = make_mm()
    mm.create_cgroup("app")
    replayer = ReplayWorkload(mm, trace, "app")
    replayer.start(0.0)
    for i, event in enumerate(trace.events):
        tick = replayer.tick(float(i) * 6.0, 6.0)
        assert tick.work_done == len(event.touched)
    assert replayer.exhausted
    assert replayer.dropped_touches == 0


def test_replay_reproduces_fault_counts_on_identical_substrate():
    trace = record(n_ticks=20)

    def faults(mm):
        return mm.cgroup("app").vmstat.pgmajfault

    mm_a = make_mm(seed=1)
    mm_a.create_cgroup("app")
    replay_a = ReplayWorkload(mm_a, trace, "app")
    replay_a.start(0.0)
    mm_b = make_mm(seed=2)  # different device RNG, same substrate shape
    mm_b.create_cgroup("app")
    replay_b = ReplayWorkload(mm_b, trace, "app")
    replay_b.start(0.0)
    for i in range(len(trace)):
        replay_a.tick(float(i) * 6.0, 6.0)
        replay_b.tick(float(i) * 6.0, 6.0)
    # Same accesses, same reclaim decisions: identical fault *counts*
    # (latencies differ with the device RNG).
    assert faults(mm_a) == faults(mm_b)


def test_replay_past_end_raises():
    trace = record(n_ticks=3)
    mm = make_mm()
    mm.create_cgroup("app")
    replayer = ReplayWorkload(mm, trace, "app")
    replayer.start(0.0)
    for i in range(3):
        replayer.tick(float(i), 1.0)
    with pytest.raises(IndexError):
        replayer.tick(4.0, 1.0)


def test_replay_on_different_backend_same_accesses():
    """The point of traces: identical load against another backend."""
    trace = record(n_ticks=20)
    mm = make_mm(backend="ssd")
    mm.create_cgroup("app")
    replayer = ReplayWorkload(mm, trace, "app")
    replayer.start(0.0)
    total = 0
    for i in range(len(trace)):
        total += replayer.tick(float(i) * 6.0, 6.0).work_done
    assert total == trace.total_touches
    assert replayer.dropped_touches == 0
