"""Unit tests for the Web RPS model."""

import pytest

from repro.kernel.page import PageKind, PageState
from repro.workloads.access import HeatBands
from repro.workloads.apps import AppProfile
from repro.workloads.web import WebConfig, WebWorkload

from tests.helpers import make_mm

PAGE = 256 * 1024
_GB = 1 << 30


def small_web_profile(npages=200) -> AppProfile:
    return AppProfile(
        name="Web",
        size_gb=npages * PAGE / _GB,
        anon_frac=0.65,
        bands=HeatBands(0.20, 0.08, 0.10),
        compress_ratio=4.0,
        file_preload=True,
        nthreads=4,
        cpu_cores=4.0,
    )


def make_web(ram_mb=256, config=None, npages=200):
    mm = make_mm(ram_mb=ram_mb)
    mm.create_cgroup("web", compressibility=4.0)
    web = WebWorkload(
        mm, "web", seed=5,
        config=config or WebConfig(),
        profile=small_web_profile(npages),
    )
    web.start(0.0)
    return web


def test_starts_with_file_cache_loaded():
    web = make_web()
    file = [p for p in web.pages if p.kind is PageKind.FILE]
    assert file
    assert all(p.state is PageState.RESIDENT for p in file)


def test_healthy_host_serves_base_rps():
    web = make_web()
    tick = web.tick(0.0, 1.0)
    assert web.rps == pytest.approx(web.config.base_rps, rel=0.05)
    assert tick.work_done == pytest.approx(web.rps, rel=1e-6)


def test_anon_grows_with_requests():
    web = make_web()
    before = web.npages_total
    for i in range(60):
        web.tick(float(i) * 10.0, 10.0)
    assert web.npages_total > before


def test_memory_bound_host_throttles():
    # Fill the host so free memory drops under the throttle threshold.
    web = make_web(ram_mb=64, npages=245)  # 245 of 256 pages resident
    web.tick(0.0, 1.0)
    assert web.rps < web.config.base_rps * 0.99
    assert web.rps >= web.config.base_rps * web.config.min_throttle


def test_stalls_reduce_rps():
    web = make_web()
    mm = web.mm
    # Swap out most anon pages: the hot set will fault back in.
    mm.memory_reclaim("web", 120 * PAGE, now=0.0)
    rps_with_stalls = None
    for i in range(5):
        web.tick(float(i), 1.0)
        if rps_with_stalls is None or web.rps < rps_with_stalls:
            rps_with_stalls = web.rps
    assert rps_with_stalls < web.config.base_rps


def test_min_throttle_floor_respected():
    config = WebConfig(min_throttle=0.7)
    web = make_web(ram_mb=64, config=config, npages=250)
    for i in range(3):
        try:
            web.tick(float(i), 1.0)
        except Exception:  # pragma: no cover - OOM paths vary
            break
    assert web.rps >= config.base_rps * 0.7 * 0.99


def test_alloc_floor_stops_growth():
    config = WebConfig(alloc_free_floor_frac=0.95)  # absurdly high floor
    web = make_web(config=config)
    before = web.npages_total
    for i in range(30):
        web.tick(float(i) * 10.0, 10.0)
    # Free memory is always below a 95% floor on this host: no growth.
    assert web.npages_total == before


def test_stall_sensitivity_zero_disables_stall_throttle():
    config = WebConfig(stall_sensitivity=0.0)
    web = make_web(config=config)
    web.mm.memory_reclaim("web", 120 * PAGE, now=0.0)
    for i in range(5):
        web.tick(float(i), 1.0)
    # Only the memory factor can throttle; plenty of free RAM here.
    assert web.rps == pytest.approx(config.base_rps, rel=0.01)


def test_stall_factor_floor():
    from repro.workloads.base import TickResult

    web = make_web()
    tick = TickResult(name="w", stall_both_s=1e9)  # absurd stall
    assert web._stall_factor(tick, dt=1.0) == pytest.approx(0.05)


def test_memory_factor_recovers_with_headroom():
    web = make_web(ram_mb=256)
    assert web._memory_factor() == 1.0
