"""Property-based tests on backend models."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends.base import IoKind
from repro.backends.compression import COMPRESSION_ALGORITHMS, compressed_size
from repro.backends.device import DeviceSpec, QueuedDevice
from repro.backends.ssd import SsdSwapBackend
from repro.backends.tiered import TieredBackend
from repro.backends.zswap import ZSWAP_ALLOCATORS, ZswapBackend

PAGE = 4096


# ----------------------------------------------------------------------
# compression


@given(
    nbytes=st.integers(min_value=0, max_value=1 << 22),
    ratio=st.floats(min_value=1.0, max_value=20.0, allow_nan=False),
    algorithm=st.sampled_from(sorted(COMPRESSION_ALGORITHMS)),
)
def test_compressed_size_bounded(nbytes, ratio, algorithm):
    algo = COMPRESSION_ALGORITHMS[algorithm]
    size = compressed_size(nbytes, ratio, algo)
    assert 0 <= size <= nbytes + 1


@given(
    ratio=st.floats(min_value=1.0, max_value=20.0, allow_nan=False),
)
def test_zstd_never_worse_than_lz4(ratio):
    zstd = COMPRESSION_ALGORITHMS["zstd"]
    lz4 = COMPRESSION_ALGORITHMS["lz4"]
    assert zstd.effective_ratio(ratio) >= lz4.effective_ratio(ratio)


@given(
    nbytes=st.integers(min_value=1, max_value=1 << 20),
    compressed=st.integers(min_value=0, max_value=1 << 20),
    allocator=st.sampled_from(sorted(ZSWAP_ALLOCATORS)),
)
def test_allocator_footprint_bounded(nbytes, compressed, allocator):
    compressed = min(compressed, nbytes)
    alloc = ZSWAP_ALLOCATORS[allocator]
    footprint = alloc.stored_footprint(nbytes, compressed)
    # Never bigger than raw, never better than the per-page cap.
    assert footprint <= nbytes
    assert footprint >= int(nbytes / alloc.max_pages_per_page) - 1


# ----------------------------------------------------------------------
# device model


@given(
    ops=st.lists(st.sampled_from([IoKind.READ, IoKind.WRITE]),
                 min_size=1, max_size=100),
    iops=st.floats(min_value=10.0, max_value=1e6),
)
@settings(max_examples=50)
def test_device_latency_positive_and_util_bounded(ops, iops):
    spec = DeviceSpec("d", read_iops=iops, write_iops=iops,
                      read_latency_p50_us=100.0,
                      write_latency_p50_us=100.0)
    device = QueuedDevice(spec, np.random.default_rng(0))
    for kind in ops:
        assert device.issue(kind) > 0.0
    device.on_tick(0.0, dt=1.0)
    assert 0.0 <= device.utilization <= 0.95


# ----------------------------------------------------------------------
# zswap pool accounting


@given(
    pages=st.lists(
        st.tuples(
            st.floats(min_value=1.0, max_value=8.0, allow_nan=False),
            st.booleans(),
        ),
        min_size=1,
        max_size=60,
    )
)
@settings(max_examples=50)
def test_zswap_pool_books_balance(pages):
    backend = ZswapBackend(np.random.default_rng(0))
    live = []
    for i, (ratio, also_free) in enumerate(pages):
        backend.store(PAGE, ratio, now=0.0, page_id=i)
        live.append((i, ratio))
        if also_free and live:
            pid, r = live.pop(0)
            backend.free(PAGE, r, page_id=pid)
        assert backend.stored_bytes == len(live) * PAGE
        assert 0 <= backend.pool_bytes <= backend.stored_bytes
    # Freeing everything leaves an empty pool.
    for pid, r in live:
        backend.free(PAGE, r, page_id=pid)
    assert backend.pool_bytes == 0
    assert backend.stored_bytes == 0


# ----------------------------------------------------------------------
# tiered placement


@given(
    stores=st.lists(
        st.tuples(
            st.floats(min_value=1.0, max_value=8.0, allow_nan=False),
            st.floats(min_value=0.0, max_value=10000.0,
                      allow_nan=False),
        ),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=50)
def test_tiered_placement_total_and_consistency(stores):
    tiered = TieredBackend(
        ZswapBackend(np.random.default_rng(0)),
        SsdSwapBackend("C", np.random.default_rng(1),
                       capacity_bytes=1 << 20),
    )
    for i, (ratio, age) in enumerate(stores):
        tiered.store(PAGE, ratio, now=0.0, page_id=i, age_s=age)
        tier = tiered.tier_of(i)
        assert tier in ("zswap", "ssd")
        # Placement policy consistency (no pool-full spills at this
        # scale): incompressible or very cold pages are on SSD.
        if ratio < tiered.compress_threshold or age >= tiered.cold_age_s:
            assert tier == "ssd"
    counts = tiered.tier_counts()
    assert counts["zswap"] + counts["ssd"] == len(stores)
    assert tiered.stored_bytes == len(stores) * PAGE
