"""Integration-style unit tests for the Senpai controller."""

import pytest

from repro.core.senpai import Senpai, SenpaiConfig
from repro.workloads.access import HeatBands
from repro.workloads.apps import AppProfile
from repro.workloads.base import Workload

from tests.helpers import small_host

MB = 1 << 20
_GB = 1 << 30


def cool_profile(npages=600) -> AppProfile:
    """A very cold workload: lots of offloading opportunity."""
    return AppProfile(
        name="cool",
        size_gb=npages * MB / _GB,
        anon_frac=0.6,
        bands=HeatBands(0.2, 0.05, 0.05),
        compress_ratio=3.0,
        nthreads=2,
        cpu_cores=1.0,
    )


def run_host(config: SenpaiConfig, duration=900.0, backend="zswap"):
    host = small_host(ram_gb=1.0, backend=backend)
    host.add_workload(Workload, profile=cool_profile(), name="app")
    senpai = host.add_controller(Senpai(config))
    host.run(duration)
    return host, senpai


def test_senpai_offloads_cold_memory():
    host, senpai = run_host(SenpaiConfig())
    cg = host.mm.cgroup("app")
    assert cg.zswap_bytes > 0
    assert senpai.total_reclaimed > 0


def test_senpai_respects_poll_interval():
    host = small_host(ram_gb=1.0)
    host.add_workload(Workload, profile=cool_profile(), name="app")
    senpai = host.add_controller(Senpai(SenpaiConfig(interval_s=60.0)))
    host.run(120.0)
    series = host.metrics.series("app/senpai_reclaim")
    # ~2 reclaim decisions in 120 s at a 60 s period (plus none at t=0).
    assert 1 <= len(series) <= 3


def test_config_defaults_match_paper():
    config = SenpaiConfig()
    assert config.interval_s == 6.0
    assert config.psi_threshold == pytest.approx(0.001)
    assert config.reclaim_ratio == pytest.approx(0.0005)
    assert config.max_step_frac == pytest.approx(0.01)


def test_config_b_is_more_aggressive():
    a, b = SenpaiConfig.config_a(), SenpaiConfig.config_b()
    assert b.reclaim_ratio > a.reclaim_ratio
    assert b.psi_threshold > a.psi_threshold


def test_aggressive_config_saves_more():
    _, senpai_a = run_host(SenpaiConfig.config_a())
    _, senpai_b = run_host(SenpaiConfig.config_b())
    assert senpai_b.total_reclaimed > senpai_a.total_reclaimed


def test_pressure_backoff_limits_reclaim():
    """A hot workload must be left mostly alone."""
    hot = AppProfile(
        name="hot",
        size_gb=600 * MB / _GB,
        anon_frac=0.6,
        bands=HeatBands(0.90, 0.05, 0.03),
        compress_ratio=3.0,
        nthreads=2,
        cpu_cores=1.0,
    )
    host = small_host(ram_gb=1.0)
    host.add_workload(Workload, profile=hot, name="app")
    host.add_controller(Senpai(SenpaiConfig()))
    host.run(900.0)
    cold_host, _ = run_host(SenpaiConfig())
    hot_offloaded = host.mm.cgroup("app").offloaded_bytes()
    cold_offloaded = cold_host.mm.cgroup("app").offloaded_bytes()
    assert hot_offloaded < cold_offloaded


def test_file_only_mode_never_touches_anon():
    host, _ = run_host(
        SenpaiConfig(file_only_mode=True), backend="zswap"
    )
    cg = host.mm.cgroup("app")
    assert cg.zswap_bytes == 0
    assert cg.swap_bytes == 0


def test_explicit_cgroup_targets():
    host = small_host(ram_gb=1.0)
    host.add_workload(Workload, profile=cool_profile(300), name="a")
    host.add_workload(Workload, profile=cool_profile(300), name="b")
    host.add_controller(Senpai(SenpaiConfig(cgroups=("a",))))
    host.run(600.0)
    assert host.mm.cgroup("a").offloaded_bytes() > 0
    assert host.mm.cgroup("b").offloaded_bytes() == 0


def test_write_regulation_activates_on_ssd():
    config = SenpaiConfig(
        write_limit_mb_s=0.05,  # tiny budget to force regulation
        reclaim_ratio=0.01, max_step_frac=0.05,
    )
    host, senpai = run_host(config, backend="ssd", duration=600.0)
    assert senpai.regulator is not None
    # The regulator observed writes and is now constraining them.
    assert senpai.regulator.observed_rate_mb_s >= 0.0
    rate = host.metrics.series("swap/out_rate_mb_s")
    # Late-window rate must be pulled near the budget.
    late = rate.window(400.0, 600.0)
    assert late.mean() < 0.5  # well below unregulated demand


def test_senpai_on_parent_slice_reclaims_all_children():
    """Senpai targeting workload.slice spreads reclaim over the app and
    its sidecars — the hierarchy handling Section 1 calls out."""
    host = small_host(ram_gb=1.5)
    host.mm.create_cgroup("workload.slice")
    host.psi.add_group("workload.slice")
    for name in ("svc-a", "svc-b"):
        host.mm.create_cgroup(name, parent="workload.slice")
        host.psi.add_group(name, parent="workload.slice")
        workload = Workload(host.mm, cool_profile(300), name, seed=5)
        workload.start(0.0)
        tasks = [
            host.psi.add_task(f"{name}/t{i}", name) for i in range(2)
        ]
        from repro.sim.host import HostedWorkload
        host._hosted[name] = HostedWorkload(
            workload=workload, cgroup_name=name, psi_tasks=tasks
        )
    host.add_controller(Senpai(SenpaiConfig(
        cgroups=("workload.slice",),
        reclaim_ratio=0.003, max_step_frac=0.02,
    )))
    host.run(600.0)
    assert host.mm.cgroup("svc-a").offloaded_bytes() > 0
    assert host.mm.cgroup("svc-b").offloaded_bytes() > 0
    assert host.mm.cgroup("workload.slice").current_bytes() < 600 << 20
