"""Unit tests for table formatting."""

import pytest

from repro.analysis.reporting import format_table


def test_basic_table():
    text = format_table(
        ["app", "savings"],
        [["Feed", 0.11], ["Web", 0.2]],
    )
    lines = text.splitlines()
    assert lines[0].startswith("app")
    assert "0.110" in lines[2]
    assert "0.200" in lines[3]


def test_title_prepended():
    text = format_table(["a"], [[1]], title="Figure 9")
    assert text.splitlines()[0] == "Figure 9"


def test_alignment_widths():
    text = format_table(["x"], [["longvalue"]])
    header, rule, row = text.splitlines()
    assert len(rule) == len("longvalue")


def test_mismatched_row_rejected():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [[1]])


def test_non_float_cells_stringified():
    text = format_table(["a"], [[None], ["x"], [3]])
    assert "None" in text and "x" in text and "3" in text
