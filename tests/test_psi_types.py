"""Unit tests for PSI task flags and resources."""

from repro.psi.types import Resource, TaskFlags


def test_none_is_idle():
    assert not TaskFlags.NONE.nonidle


def test_any_flag_is_nonidle():
    assert TaskFlags.RUNNING.nonidle
    assert TaskFlags.MEMSTALL.nonidle


def test_memstall_stalls_memory_only():
    flags = TaskFlags.MEMSTALL
    assert flags.stalled_on(Resource.MEMORY)
    assert not flags.stalled_on(Resource.IO)
    assert not flags.stalled_on(Resource.CPU)


def test_iostall_stalls_io_only():
    flags = TaskFlags.IOSTALL
    assert flags.stalled_on(Resource.IO)
    assert not flags.stalled_on(Resource.MEMORY)


def test_combined_mem_and_io_stall():
    flags = TaskFlags.MEMSTALL | TaskFlags.IOSTALL
    assert flags.stalled_on(Resource.MEMORY)
    assert flags.stalled_on(Resource.IO)


def test_runnable_without_cpu_is_cpu_stall():
    assert TaskFlags.RUNNABLE.stalled_on(Resource.CPU)


def test_running_task_is_not_cpu_stalled():
    flags = TaskFlags.RUNNING | TaskFlags.RUNNABLE
    assert not flags.stalled_on(Resource.CPU)


def test_running_is_productive_for_memory():
    assert TaskFlags.RUNNING.productive_for(Resource.MEMORY)


def test_memstalled_runner_is_not_productive_for_memory():
    # Direct reclaim: on CPU but accounted as a memory stall.
    flags = TaskFlags.RUNNING | TaskFlags.MEMSTALL
    assert not flags.productive_for(Resource.MEMORY)
    assert flags.stalled_on(Resource.MEMORY)


def test_runnable_counts_as_potentially_productive_for_memory():
    # A CPU-starved task does not make the domain memory-"full".
    assert TaskFlags.RUNNABLE.productive_for(Resource.MEMORY)


def test_only_running_is_productive_for_cpu():
    assert TaskFlags.RUNNING.productive_for(Resource.CPU)
    assert not TaskFlags.RUNNABLE.productive_for(Resource.CPU)
    assert not TaskFlags.NONE.productive_for(Resource.CPU)


def test_idle_task_is_invisible():
    for resource in Resource:
        assert not TaskFlags.NONE.stalled_on(resource)
        assert not TaskFlags.NONE.productive_for(resource)
