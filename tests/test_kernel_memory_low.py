"""Unit tests for memory.low protection and container priorities."""

import pytest

from tests.helpers import make_mm

PAGE = 256 * 1024


def test_protected_flag():
    mm = make_mm()
    mm.create_cgroup("app")
    cg = mm.cgroup("app")
    assert not cg.protected()  # default: no protection
    mm.alloc_anon("app", 10, now=0.0)
    cg.memory_low = 20 * PAGE
    assert cg.protected()      # usage below the floor
    mm.alloc_anon("app", 15, now=1.0)
    assert not cg.protected()  # grew beyond the floor


def test_reclaim_skips_protected_sibling():
    mm = make_mm()
    mm.create_cgroup("slice")
    mm.create_cgroup("precious", parent="slice")
    mm.create_cgroup("bulk", parent="slice")
    mm.alloc_anon("precious", 20, now=0.0)
    mm.alloc_anon("bulk", 20, now=0.0)
    mm.cgroup("precious").memory_low = 30 * PAGE
    mm.memory_reclaim("slice", 10 * PAGE, now=1.0)
    assert mm.cgroup("precious").resident_bytes == 20 * PAGE
    assert mm.cgroup("bulk").resident_bytes <= 10 * PAGE


def test_protection_is_best_effort():
    """When every candidate is protected, reclaim proceeds anyway."""
    mm = make_mm()
    mm.create_cgroup("slice")
    mm.create_cgroup("a", parent="slice")
    mm.create_cgroup("b", parent="slice")
    mm.alloc_anon("a", 10, now=0.0)
    mm.alloc_anon("b", 10, now=0.0)
    mm.cgroup("a").memory_low = 100 * PAGE
    mm.cgroup("b").memory_low = 100 * PAGE
    outcome = mm.memory_reclaim("slice", 4 * PAGE, now=1.0)
    assert outcome.reclaimed_bytes >= 4 * PAGE


def test_partial_protection_over_low():
    """A cgroup above its memory.low is fair game."""
    mm = make_mm()
    mm.create_cgroup("app")
    mm.alloc_anon("app", 40, now=0.0)
    mm.cgroup("app").memory_low = 10 * PAGE
    outcome = mm.memory_reclaim("app", 5 * PAGE, now=1.0)
    assert outcome.reclaimed_bytes == 5 * PAGE


def test_memory_low_control_file():
    from repro.kernel.controlfs import ControlFs
    from repro.psi.tracker import PsiSystem

    mm = make_mm()
    psi = PsiSystem(ncpu=4)
    mm.create_cgroup("app")
    psi.add_group("app")
    fs = ControlFs(mm, psi)
    assert fs.read("app/memory.low", 0.0) == "0"
    fs.write("app/memory.low", "10M", 0.0)
    assert mm.cgroup("app").memory_low == 10 << 20
    assert fs.read("app/memory.low", 0.0) == str(10 << 20)
    fs.write("app/memory.low", "0", 0.0)
    assert mm.cgroup("app").memory_low == 0


def test_global_reclaim_respects_protection():
    mm = make_mm(ram_mb=16, backend="zswap")  # 64 pages
    mm.create_cgroup("precious")
    mm.create_cgroup("bulk")
    mm.alloc_anon("precious", 20, now=0.0)
    mm.cgroup("precious").memory_low = 30 * PAGE
    mm.alloc_anon("bulk", 40, now=0.0)
    # Host is full; this alloc triggers global reclaim, which must
    # come out of "bulk".
    mm.alloc_anon("bulk", 4, now=1.0)
    assert mm.cgroup("precious").resident_bytes == 20 * PAGE
