"""Per-container SLO tiers in Senpai (Section 3.3's planned work)."""

import pytest

from repro.core.senpai import Senpai, SenpaiConfig, SloTier
from repro.workloads.access import HeatBands
from repro.workloads.apps import AppProfile
from repro.workloads.base import Workload

from tests.helpers import small_host

MB = 1 << 20
_GB = 1 << 30


def profile(name, npages=300) -> AppProfile:
    return AppProfile(
        name=name,
        size_gb=npages * MB / _GB,
        anon_frac=0.6,
        bands=HeatBands(0.3, 0.1, 0.1),
        compress_ratio=3.0,
        nthreads=2,
        cpu_cores=1.0,
    )


def test_default_tier_is_neutral():
    config = SenpaiConfig()
    tier = config.tier_for("anything")
    assert tier.pressure_scale == 1.0
    assert tier.ratio_scale == 1.0


def test_named_tiers():
    assert SloTier.batch().pressure_scale > 1.0
    assert SloTier.latency_sensitive().pressure_scale < 1.0


def test_tier_lookup():
    config = SenpaiConfig(
        slo_tiers=(("batchy", SloTier.batch()),)
    )
    assert config.tier_for("batchy").ratio_scale == 4.0
    assert config.tier_for("other").ratio_scale == 1.0


def test_batch_tier_offloads_more_than_sensitive():
    host = small_host(ram_gb=1.5, backend="zswap")
    host.add_workload(Workload, profile=profile("b"), name="batchy")
    host.add_workload(Workload, profile=profile("s"), name="sensitive")
    host.add_controller(Senpai(SenpaiConfig(
        reclaim_ratio=0.002,
        slo_tiers=(
            ("batchy", SloTier.batch()),
            ("sensitive", SloTier.latency_sensitive()),
        ),
    )))
    host.run(900.0)
    batch_offloaded = host.mm.cgroup("batchy").offloaded_bytes()
    sensitive_offloaded = host.mm.cgroup("sensitive").offloaded_bytes()
    # Identical workloads; the tiering alone drives the difference.
    assert batch_offloaded > 2 * sensitive_offloaded
