"""Unit tests for the tiered (zswap-over-SSD) backend."""

import numpy as np
import pytest

from repro.backends.ssd import SsdSwapBackend
from repro.backends.tiered import TIER_SSD, TIER_ZSWAP, TieredBackend
from repro.backends.zswap import ZswapBackend

PAGE = 4096


def make_tiered(pool_pages=None, **kwargs):
    zswap = ZswapBackend(
        np.random.default_rng(0),
        max_pool_bytes=pool_pages * PAGE if pool_pages else None,
    )
    ssd = SsdSwapBackend(
        "C", np.random.default_rng(1), capacity_bytes=1024 * PAGE
    )
    return TieredBackend(zswap, ssd, **kwargs)


def test_compressible_warm_page_goes_to_zswap():
    tiered = make_tiered()
    tiered.store(PAGE, 4.0, now=0.0, page_id=1, age_s=60.0)
    assert tiered.tier_of(1) == TIER_ZSWAP
    assert tiered.zswap.stored_bytes == PAGE


def test_incompressible_page_goes_to_ssd():
    tiered = make_tiered()
    tiered.store(PAGE, 1.1, now=0.0, page_id=1, age_s=60.0)
    assert tiered.tier_of(1) == TIER_SSD
    assert tiered.ssd.stored_bytes == PAGE


def test_very_cold_page_goes_to_ssd():
    tiered = make_tiered(cold_age_s=1800.0)
    tiered.store(PAGE, 4.0, now=0.0, page_id=1, age_s=7200.0)
    assert tiered.tier_of(1) == TIER_SSD


def test_pool_overflow_spills_to_ssd():
    tiered = make_tiered(pool_pages=1)
    tiered.store(PAGE, 1.9, now=0.0, page_id=1, age_s=0.0)
    # Pool is full (1.9x barely compresses); the next store spills.
    tiered.store(PAGE, 1.9, now=0.0, page_id=2, age_s=0.0)
    assert tiered.tier_of(2) == TIER_SSD
    assert tiered.spilled_stores == 1


def test_load_dispatches_by_placement():
    tiered = make_tiered()
    tiered.store(PAGE, 4.0, now=0.0, page_id=1, age_s=0.0)
    tiered.store(PAGE, 1.0, now=0.0, page_id=2, age_s=0.0)
    lat_zswap = tiered.load(PAGE, 4.0, now=1.0, page_id=1)
    lat_ssd = tiered.load(PAGE, 1.0, now=1.0, page_id=2)
    # zswap loads are an order of magnitude faster.
    assert lat_zswap < lat_ssd


def test_free_clears_placement():
    tiered = make_tiered()
    tiered.store(PAGE, 4.0, now=0.0, page_id=1, age_s=0.0)
    tiered.free(PAGE, 4.0, page_id=1)
    assert tiered.tier_of(1) is None
    assert tiered.zswap.stored_bytes == 0


def test_requires_page_identity():
    tiered = make_tiered()
    with pytest.raises(ValueError):
        tiered.store(PAGE, 4.0, now=0.0)
    with pytest.raises(ValueError):
        tiered.load(PAGE, 4.0, now=0.0)


def test_unknown_page_load_rejected():
    tiered = make_tiered()
    with pytest.raises(KeyError):
        tiered.load(PAGE, 4.0, now=0.0, page_id=99)


def test_aggregate_accounting():
    tiered = make_tiered()
    tiered.store(PAGE, 4.0, now=0.0, page_id=1, age_s=0.0)   # zswap
    tiered.store(PAGE, 1.0, now=0.0, page_id=2, age_s=0.0)   # ssd
    assert tiered.stored_bytes == 2 * PAGE
    assert tiered.dram_overhead_bytes == tiered.zswap.pool_bytes > 0
    assert tiered.endurance_bytes_written == PAGE
    counts = tiered.tier_counts()
    assert counts == {TIER_ZSWAP: 1, TIER_SSD: 1}


def test_host_integration_with_tiered_backend():
    """End to end: mixed compressibility splits across tiers."""
    from repro.core.senpai import Senpai, SenpaiConfig
    from repro.kernel.page import PageState
    from repro.workloads.access import HeatBands
    from repro.workloads.apps import AppProfile
    from repro.workloads.base import Workload

    from tests.helpers import small_host

    MB = 1 << 20
    host = small_host(ram_gb=1.0, backend="tiered")
    profile = AppProfile(
        name="mixed", size_gb=600 * MB / (1 << 30), anon_frac=0.7,
        bands=HeatBands(0.2, 0.05, 0.05), compress_ratio=3.0,
        nthreads=2, cpu_cores=1.0,
    )
    host.add_workload(Workload, profile=profile, name="app")
    host.add_controller(
        Senpai(SenpaiConfig(reclaim_ratio=0.005, max_step_frac=0.02))
    )
    host.run(900.0)
    counts = host.swap_backend.tier_counts()
    # Compressible pages land in zswap; the deeply cold ones (age
    # beyond cold_age_s) go to SSD.
    assert counts[TIER_ZSWAP] > 0
    pages = host.workload("app").pages
    states = {p.state for p in pages}
    assert PageState.ZSWAPPED in states
    # Page states agree with tier placement.
    for page in pages:
        tier = host.swap_backend.tier_of(page.page_id)
        if tier == TIER_ZSWAP:
            assert page.state is PageState.ZSWAPPED
        elif tier == TIER_SSD:
            assert page.state is PageState.SWAPPED
