"""End-to-end check of the deterministic-seeding design decision.

DESIGN.md promises: identical seeds => bit-identical runs, which is
what makes the A/B harness exact. These tests build two hosts from the
same config, run them independently, and compare every recorded metric
series for float-exact equality — then show a different seed actually
changes the numbers (so the first assertion is not vacuous).
"""

from repro.core.senpai import Senpai, SenpaiConfig
from repro.workloads.access import HeatBands
from repro.workloads.apps import AppProfile
from repro.workloads.base import Workload

from tests.helpers import small_host

MB = 1 << 20
_GB = 1 << 30

RUN_S = 60.0


def build_host(seed: int):
    host = small_host(ram_gb=1.0, seed=seed)
    profile = AppProfile(
        name="app",
        size_gb=900 * MB / _GB,
        anon_frac=0.6,
        bands=HeatBands(0.3, 0.2, 0.1),
        compress_ratio=3.0,
        nthreads=2,
        cpu_cores=1.0,
    )
    host.add_workload(Workload, profile=profile, name="app")
    host.add_controller(Senpai(SenpaiConfig()))
    return host


def run_series(seed: int):
    host = build_host(seed)
    host.run(RUN_S)
    return {
        name: (
            tuple(host.metrics.series(name).times),
            tuple(host.metrics.series(name).values),
        )
        for name in host.metrics.names()
    }


def test_same_seed_is_bit_identical():
    a = run_series(seed=1234)
    b = run_series(seed=1234)
    assert sorted(a) == sorted(b)
    for name in a:
        # Tuple equality on floats is exact — no tolerance anywhere.
        assert a[name] == b[name], f"series {name!r} diverged"


def test_same_seed_offload_state_is_identical():
    ha, hb = build_host(seed=7), build_host(seed=7)
    ha.run(RUN_S)
    hb.run(RUN_S)
    cga, cgb = ha.mm.cgroup("app"), hb.mm.cgroup("app")
    assert cga.anon_bytes == cgb.anon_bytes
    assert cga.file_bytes == cgb.file_bytes
    assert cga.swap_bytes == cgb.swap_bytes
    assert cga.zswap_bytes == cgb.zswap_bytes
    assert ha.mm.free_bytes() == hb.mm.free_bytes()


def test_different_seed_diverges():
    a = run_series(seed=1234)
    b = run_series(seed=4321)
    assert sorted(a) == sorted(b)  # same metric names either way
    assert any(a[name] != b[name] for name in a), (
        "changing the seed changed nothing — the determinism test "
        "would be vacuous"
    )


def test_fleet_digests_are_worker_count_invariant():
    """The same promise, fleet-wide: fanning hosts over processes is a
    pure speedup. Per-host metric digests (SHA-256 over every series,
    see :func:`repro.sim.metrics.metrics_digest`) must be bit-identical
    whatever the worker count."""
    from repro.core.fleet import Fleet, HostPlan
    from repro.sim.host import HostConfig

    plans = [HostPlan(app="Feed", count=2, size_scale=0.003)]

    def digests(seed, workers):
        fleet = Fleet(
            base_config=HostConfig(
                ram_gb=0.25, page_size_bytes=1 * MB, ncpu=4,
            ),
            seed=seed,
        )
        result = fleet.run(plans, duration_s=60.0, workers=workers)
        assert not result.failed_hosts
        return [r.metrics_digest for r in result.reports]

    for seed in (1234, 4321):
        assert digests(seed, None) == digests(seed, 2)
    assert digests(1234, 2) != digests(4321, 2)
