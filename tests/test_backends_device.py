"""Unit tests for the queued-device latency model."""

import numpy as np
import pytest

from repro.backends.base import IoKind
from repro.backends.device import DeviceSpec, QueuedDevice, _norm_ppf


def make_device(read_iops=1000.0, seed=1, sigma=0.5):
    spec = DeviceSpec(
        name="d",
        read_iops=read_iops,
        write_iops=read_iops / 2,
        read_latency_p50_us=100.0,
        write_latency_p50_us=200.0,
        latency_sigma=sigma,
    )
    return QueuedDevice(spec, np.random.default_rng(seed))


def test_idle_device_has_zero_utilization():
    dev = make_device()
    assert dev.utilization == 0.0


def test_latency_positive_and_roughly_scaled():
    dev = make_device(sigma=0.01)  # nearly deterministic
    lat = dev.issue(IoKind.READ)
    assert lat == pytest.approx(100e-6, rel=0.1)
    lat_w = dev.issue(IoKind.WRITE)
    assert lat_w == pytest.approx(200e-6, rel=0.1)


def test_utilization_rises_with_load():
    dev = make_device(read_iops=100.0)
    for _ in range(50):
        dev.issue(IoKind.READ)
    dev.on_tick(1.0, dt=1.0)  # 50 ops in 1s vs 100 iops
    # Rate window smooths: utilisation is positive and below the cap.
    assert 0.0 < dev.utilization <= 0.95


def test_saturation_inflates_latency():
    calm = make_device(read_iops=100.0, seed=3, sigma=0.01)
    busy = make_device(read_iops=100.0, seed=3, sigma=0.01)
    for _ in range(10):
        for _ in range(500):
            busy.issue(IoKind.READ)
        busy.on_tick(0.0, dt=1.0)
    assert busy.utilization == pytest.approx(0.95)
    assert busy.issue(IoKind.READ) > 5 * calm.issue(IoKind.READ)


def test_weighted_ops_count_toward_utilization():
    dev = make_device(read_iops=100.0)
    dev.issue(IoKind.READ, weight=50.0)
    dev.on_tick(0.0, dt=1.0)
    assert dev.utilization > 0.05


def test_rates_decay_when_idle():
    dev = make_device(read_iops=100.0)
    for _ in range(100):
        dev.issue(IoKind.READ)
    dev.on_tick(0.0, dt=1.0)
    busy_util = dev.utilization
    for _ in range(100):
        dev.on_tick(0.0, dt=1.0)
    assert dev.utilization < busy_util / 10


def test_expected_latency_percentiles_ordered():
    dev = make_device()
    p50 = dev.expected_latency(IoKind.READ, 50.0)
    p90 = dev.expected_latency(IoKind.READ, 90.0)
    p99 = dev.expected_latency(IoKind.READ, 99.0)
    assert p50 < p90 < p99


def test_norm_ppf_sanity():
    assert _norm_ppf(0.5) == pytest.approx(0.0, abs=1e-9)
    assert _norm_ppf(0.975) == pytest.approx(1.959964, abs=1e-4)
    assert _norm_ppf(0.025) == pytest.approx(-1.959964, abs=1e-4)
    with pytest.raises(ValueError):
        _norm_ppf(0.0)
