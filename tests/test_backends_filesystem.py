"""Unit tests for the filesystem read/writeback backend."""

import numpy as np

from repro.backends.filesystem import FilesystemBackend
from repro.backends.ssd import make_ssd_device

PAGE = 4096


def make_fs(model="C", device=None):
    return FilesystemBackend(model, np.random.default_rng(0), device=device)


def test_load_counts_and_stalls():
    fs = make_fs()
    latency = fs.load(PAGE, 3.0, now=0.0)
    assert latency > 0.0
    assert fs.stats.reads == 1
    assert fs.stats.bytes_read == PAGE


def test_writeback_counts_writes():
    fs = make_fs()
    latency = fs.store(PAGE, 3.0, now=0.0)
    assert latency > 0.0
    assert fs.stats.writes == 1


def test_free_is_noop():
    fs = make_fs()
    fs.free(PAGE, 3.0)  # filesystem retains data; nothing to assert
    assert fs.stored_bytes == 0


def test_blocks_on_io():
    assert make_fs().blocks_on_io


def test_no_dram_overhead():
    assert make_fs().dram_overhead_bytes == 0


def test_shared_device_sees_combined_load():
    device = make_ssd_device("C", np.random.default_rng(1))
    fs = make_fs(device=device)
    for _ in range(1000):
        fs.load(PAGE, 3.0, now=0.0)
    device.on_tick(0.0, dt=0.01)
    # FS traffic drove the shared device's utilisation up.
    assert device.utilization > 0.0
