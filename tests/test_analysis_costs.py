"""Unit tests for the Figure 1 cost model."""

import pytest

from repro.analysis.costs import (
    COST_TRENDS,
    compressed_memory_cost_pct,
    cost_table,
)


def test_six_generations():
    assert [row.generation for row in COST_TRENDS] == [1, 2, 3, 4, 5, 6]


def test_memory_cost_grows_to_33_percent():
    values = [row.memory_pct for row in COST_TRENDS]
    assert values == sorted(values)
    assert values[-1] == pytest.approx(33.0)


def test_memory_power_reaches_38_percent():
    assert COST_TRENDS[-1].memory_power_pct == pytest.approx(38.0)


def test_ssd_iso_capacity_stays_under_1_percent():
    for row in COST_TRENDS:
        assert row.ssd_iso_capacity_pct < 1.0


def test_compressed_memory_is_memory_over_ratio():
    row = COST_TRENDS[2]
    assert row.compressed_memory_pct(3.0) == pytest.approx(
        row.memory_pct / 3.0
    )


def test_compressed_memory_10x_ssd():
    """Section 2.1: SSD ~10x cheaper per byte than compressed memory."""
    for row in COST_TRENDS:
        ratio = row.compressed_memory_pct() / row.ssd_iso_capacity_pct
        assert 5.0 < ratio < 25.0


def test_compressed_cost_lookup():
    assert compressed_memory_cost_pct(6) == pytest.approx(11.0)
    with pytest.raises(KeyError):
        compressed_memory_cost_pct(7)


def test_invalid_ratio_rejected():
    with pytest.raises(ValueError):
        COST_TRENDS[0].compressed_memory_pct(0.5)


def test_cost_table_rows():
    rows = cost_table()
    assert len(rows) == 6
    gen, mem, comp, ssd = rows[-1]
    assert gen == 6
    assert mem > comp > ssd


# ----------------------------------------------------------------------
# fleet cost reduction (ties Figure 1 to Section 4.1)

from repro.analysis.costs import fleet_cost_reduction_pct


def test_cost_reduction_zswap():
    # 25% DRAM saved at Gen 6: 0.25*33 = 8.25 pts of memory cost,
    # minus the pool's 0.25*11 = 2.75 pts -> 5.5 pts net.
    net = fleet_cost_reduction_pct(0.25, generation=6, backend="zswap")
    assert net == pytest.approx(5.5)


def test_cost_reduction_ssd_beats_zswap():
    # Section 2.1's argument: iso-capacity SSD is ~10x cheaper than
    # compressed memory, so SSD offload nets more per byte saved.
    zswap = fleet_cost_reduction_pct(0.25, backend="zswap")
    ssd = fleet_cost_reduction_pct(0.25, backend="ssd")
    assert ssd > zswap


def test_cost_reduction_scales_linearly():
    a = fleet_cost_reduction_pct(0.10, backend="ssd")
    b = fleet_cost_reduction_pct(0.20, backend="ssd")
    assert b == pytest.approx(2 * a)


def test_cost_reduction_validation():
    with pytest.raises(ValueError):
        fleet_cost_reduction_pct(1.5)
    with pytest.raises(ValueError):
        fleet_cost_reduction_pct(0.2, backend="tape")
    with pytest.raises(KeyError):
        fleet_cost_reduction_pct(0.2, generation=9)


def test_cost_reduction_zero_savings_zero_cost():
    assert fleet_cost_reduction_pct(0.0) == 0.0
