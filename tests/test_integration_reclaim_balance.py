"""Integration: TMO's balanced reclaim vs the legacy file-skewed one.

Section 3.4: the legacy kernel reclaimed substantial parts of the file
*working set* (causing refaults) before considering cold anonymous
memory; TMO's rewrite swaps as soon as refaults appear and minimises
aggregate paging.
"""

import pytest

from repro.core.senpai import Senpai, SenpaiConfig
from repro.workloads.access import HeatBands
from repro.workloads.apps import AppProfile
from repro.workloads.base import Workload

from tests.helpers import small_host

MB = 1 << 20
_GB = 1 << 30

#: Hot file cache + cold anon: the configuration where the legacy
#: balance hurts most.
PROFILE = AppProfile(
    name="mixed",
    size_gb=900 * MB / _GB,
    anon_frac=0.55,
    bands=HeatBands(0.45, 0.10, 0.10),
    compress_ratio=3.0,
    file_preload=True,
    nthreads=2,
    cpu_cores=1.0,
)


def run(policy: str, duration=2400.0):
    host = small_host(
        ram_gb=1.5, backend="zswap", reclaim_policy=policy, seed=123
    )
    host.add_workload(Workload, profile=PROFILE, name="app")
    host.add_controller(
        Senpai(SenpaiConfig(reclaim_ratio=0.002, max_step_frac=0.02))
    )
    host.run(duration)
    return host


@pytest.fixture(scope="module")
def hosts():
    return {"tmo": run("tmo"), "legacy": run("legacy")}


def test_legacy_never_swaps_while_file_remains(hosts):
    cg = hosts["legacy"].mm.cgroup("app")
    # File cache never collapsed to the emergency threshold, so the
    # legacy balance kept swap at (near) zero.
    assert cg.vmstat.pswpout == 0


def test_tmo_offloads_anon_once_refaults_start(hosts):
    cg = hosts["tmo"].mm.cgroup("app")
    assert cg.vmstat.pswpout > 0
    assert cg.zswap_bytes > 0


def test_tmo_causes_less_file_thrash(hosts):
    tmo = hosts["tmo"].mm.cgroup("app")
    legacy = hosts["legacy"].mm.cgroup("app")
    assert tmo.vmstat.workingset_refault < legacy.vmstat.workingset_refault


def test_tmo_pages_less_overall(hosts):
    """Aggregate paging (refaults + swap-ins) is lower under TMO."""
    def paging(host):
        vm = host.mm.cgroup("app").vmstat
        return vm.workingset_refault + vm.pswpin

    assert paging(hosts["tmo"]) <= paging(hosts["legacy"])


def test_both_policies_reclaim_comparable_volumes(hosts):
    """The comparison is fair: both reclaimed a similar magnitude."""
    tmo = hosts["tmo"].mm.cgroup("app")
    legacy = hosts["legacy"].mm.cgroup("app")
    assert tmo.vmstat.pgsteal > 0 and legacy.vmstat.pgsteal > 0
    ratio = tmo.vmstat.pgsteal / legacy.vmstat.pgsteal
    assert 0.2 < ratio < 5.0
