"""Granularity independence (a DESIGN.md invariant).

The page size is a scale knob: a host modelled with 1 MiB pages and one
with 2 MiB pages must produce closely matching *fractions* — savings,
resident shares, pressure levels — because every rate in the system is
expressed per byte per second. This pins the claim with an experiment.
"""

import pytest

from repro.core.fleet import cgroup_memory_savings
from repro.core.senpai import Senpai, SenpaiConfig
from repro.psi.types import Resource
from repro.sim.host import Host, HostConfig
from repro.workloads.access import HeatBands
from repro.workloads.apps import AppProfile
from repro.workloads.base import Workload

MB = 1 << 20
_GB = 1 << 30

PROFILE = AppProfile(
    name="app", size_gb=1.2, anon_frac=0.6,
    bands=HeatBands(0.3, 0.1, 0.1), compress_ratio=3.0,
    cold_never_share=0.3, nthreads=2, cpu_cores=1.0,
)


def run(page_mb: int, seed=21, duration=1200.0):
    host = Host(HostConfig(
        ram_gb=2.0, ncpu=8, page_size_bytes=page_mb * MB, seed=seed,
        backend="zswap",
    ))
    host.add_workload(Workload, profile=PROFILE, name="app",
                      size_scale=1.0)
    host.add_controller(
        Senpai(SenpaiConfig(reclaim_ratio=0.003, max_step_frac=0.02))
    )
    host.run(duration)
    stats = cgroup_memory_savings(host.mm, "app")
    cg = host.mm.cgroup("app")
    sample = host.psi.group("app").sample(Resource.MEMORY,
                                          host.clock.now)
    footprint = cg.resident_bytes + cg.offloaded_bytes()
    return {
        "savings_frac": stats["savings_frac"],
        "resident_frac": cg.resident_bytes / footprint,
        "anon_share": cg.anon_bytes / max(1, cg.resident_bytes),
        "psi_mem": sample.some_avg300,
    }


@pytest.fixture(scope="module")
def runs():
    return {1: run(1), 2: run(2)}


def test_savings_fraction_granularity_independent(runs):
    assert runs[1]["savings_frac"] == pytest.approx(
        runs[2]["savings_frac"], abs=0.06
    )
    assert runs[1]["savings_frac"] > 0.02  # both actually offloaded


def test_resident_share_granularity_independent(runs):
    assert runs[1]["resident_frac"] == pytest.approx(
        runs[2]["resident_frac"], abs=0.06
    )


def test_anon_file_mix_granularity_independent(runs):
    assert runs[1]["anon_share"] == pytest.approx(
        runs[2]["anon_share"], abs=0.10
    )


def test_pressure_magnitude_granularity_independent(runs):
    # Pressure levels are tiny; compare on the same order of magnitude.
    p1, p2 = runs[1]["psi_mem"], runs[2]["psi_mem"]
    assert p1 < 0.01 and p2 < 0.01
    if max(p1, p2) > 1e-5:
        assert max(p1, p2) / max(1e-9, min(p1, p2)) < 25
