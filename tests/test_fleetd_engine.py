"""FleetdEngine: registry, tick loop, spooling, crash recovery.

Rollout staging and gating have their own suite
(tests/test_fleetd_rollout.py); the control-plane chaos gauntlet lives
in tests/test_fleetd_chaos.py.
"""

import math

import pytest

from repro.fleetd.engine import FleetdConfig, FleetdEngine, FleetdError
from repro.fleetd.policy import PolicySpec
from repro.fleetd.registry import RegistryError
from repro.fleetd.rollout import RolloutConfig
from repro.sim.host import HostConfig

MB = 1 << 20

BASE = HostConfig(ram_gb=0.25, page_size_bytes=1 * MB, ncpu=4)


def make_engine(**overrides) -> FleetdEngine:
    fields = dict(
        seed=11,
        base_config=BASE,
        rollout=RolloutConfig(
            canary_frac=0.34, wave_frac=1.0,
            baseline_s=20.0, soak_s=20.0,
        ),
        checkpoint_every_s=15.0,
    )
    fields.update(overrides)
    return FleetdEngine(FleetdConfig(**fields))


def register_small_fleet(engine, n=3):
    for i in range(n):
        engine.register(f"h{i}", "Feed" if i % 2 == 0 else "Web",
                        size_scale=0.003)


# ----------------------------------------------------------------------
# registry surface


def test_register_builds_supervised_host():
    with make_engine() as engine:
        entry = engine.register("web-01", "Web", size_scale=0.003)
        assert entry.generation == 0
        assert entry.spec == PolicySpec()
        assert entry.supervisor.alive
        assert "web-01" in engine.registry


def test_register_refuses_bad_ids_and_duplicates():
    with make_engine() as engine:
        with pytest.raises(RegistryError, match="host id"):
            engine.register("no spaces allowed", "Feed")
        engine.register("h0", "Feed", size_scale=0.003)
        with pytest.raises(RegistryError):
            engine.register("h0", "Feed", size_scale=0.003)


def test_deregister_stops_ticking_and_drops_spool():
    with make_engine() as engine:
        register_small_fleet(engine, 2)
        engine.run_ticks(3)
        engine.deregister("h1")
        assert "h1" not in engine.registry
        with pytest.raises(RegistryError, match="not registered"):
            engine.deregister("h1")


def test_late_registration_catches_up_from_its_own_epoch():
    with make_engine() as engine:
        engine.register("h0", "Feed", size_scale=0.003)
        engine.run_ticks(5)
        late = engine.register("h1", "Web", size_scale=0.003)
        engine.run_ticks(3)
        # The late host only lives the ticks since its registration.
        assert late.host.tick_count == 3
        assert engine.registry.get("h0").host.tick_count == 8


def test_now_tracks_tick_quantum():
    with make_engine() as engine:
        assert engine.now == 0.0
        engine.run_ticks(4)
        assert engine.now == 4 * BASE.tick_s


# ----------------------------------------------------------------------
# spooling + crash recovery (the PR 8 fleetres path)


def test_crash_recovers_from_spool():
    with make_engine() as engine:
        register_small_fleet(engine, 2)
        engine.run_ticks(20)  # past checkpoint_every_s=15
        assert engine.crash_host("h0") is True
        assert engine.recoveries == {"h0": 1}
        # Recovery replays the missed ticks: the host is back at the
        # engine's tick target.
        assert engine.registry.get("h0").host.tick_count == 20


def test_crash_without_spool_rebuilds_from_scratch():
    with make_engine(checkpoint_every_s=math.inf) as engine:
        register_small_fleet(engine, 2)
        engine.run_ticks(10)
        assert engine.crash_host("h1") is False
        assert engine.registry.get("h1").host.tick_count == 10


def test_crash_recovery_is_digest_equivalent():
    """A crashed-and-recovered fleet matches the uninterrupted one."""
    def run(crash: bool) -> str:
        with make_engine() as engine:
            register_small_fleet(engine, 2)
            engine.run_ticks(15)
            if crash:
                engine.crash_host("h0")
            engine.run_ticks(10)
            return engine.fleet_digest()

    assert run(crash=False) == run(crash=True)


def test_crash_mid_rollout_converges_to_registry_generation():
    """A spool older than the host's policy generation must not
    resurrect the stale controller."""
    with make_engine() as engine:
        register_small_fleet(engine, 3)
        engine.run_ticks(30)  # spooled at generation 0
        engine.begin_rollout(PolicySpec.make("autotune"))
        engine.run_ticks(2)  # canary h0 applied at generation 1
        entry = engine.registry.get("h0")
        assert entry.generation == 1
        assert entry.spool_generation == 0
        engine.crash_host("h0")
        # Recovered from the generation-0 spool, then converged.
        assert entry.generation == 1
        assert entry.spec == PolicySpec.make("autotune")
        gens = entry.host.metrics.series("fleetd/generation")
        assert gens.values[-1] == 1.0


def test_wedged_host_pauses_then_catches_up():
    with make_engine() as engine:
        register_small_fleet(engine, 2)
        engine.run_ticks(5)
        engine.wedge_host("h0", duration_s=4.0)
        engine.run_ticks(3)
        assert engine.registry.get("h0").host.tick_count == 5
        engine.run_ticks(2)  # wedge expired: catch-up to tick 10
        assert engine.registry.get("h0").host.tick_count == 10


# ----------------------------------------------------------------------
# control surface


def test_begin_rollout_validates_targets():
    with make_engine() as engine:
        register_small_fleet(engine, 2)
        with pytest.raises(RegistryError, match="not registered"):
            engine.begin_rollout(PolicySpec(), host_ids=["ghost"])


def test_kill_switch_freezes_the_fleet_permanently():
    with make_engine() as engine:
        register_small_fleet(engine, 2)
        engine.begin_rollout(PolicySpec.make("autotune"))
        killed = engine.kill_switch()
        assert killed == 1
        assert engine.frozen
        with pytest.raises(FleetdError, match="kill switch"):
            engine.begin_rollout(PolicySpec())
        # The killed rollout's record is terminal and attributed.
        result = engine.rollout_result(1)
        assert result.status == "killed"
        assert "kill switch" in result.rollback_reason


def test_registration_joins_at_the_committed_policy():
    """New hosts join at the last *succeeded* rollout's policy, never
    a mid-rollout canary's."""
    with make_engine() as engine:
        register_small_fleet(engine, 3)
        engine.run_ticks(25)
        spec = PolicySpec.make("senpai", {"interval_s": 4.0})
        engine.begin_rollout(spec)
        engine.run_ticks(2)
        # Mid-rollout: the canary runs the candidate, but a new host
        # still joins at the committed (pre-rollout) policy.
        mid = engine.register("late-mid", "Web", size_scale=0.003)
        assert mid.spec == PolicySpec()
        engine.run_ticks(60)
        assert engine.rollout_result(1).status == "succeeded"
        assert engine.committed_spec == spec
        late = engine.register("late-after", "Web", size_scale=0.003)
        assert late.spec == spec


def test_reset_quarantine_restarts_and_records_metric():
    with make_engine() as engine:
        register_small_fleet(engine, 1)
        engine.run_ticks(2)
        entry = engine.registry.get("h0")
        # Not quarantined: a no-op that reports False.
        assert engine.reset_quarantine("h0") is False
        entry.supervisor.quarantined = True
        entry.supervisor.alive = False
        assert engine.reset_quarantine("h0") is True
        assert entry.supervisor.alive
        assert not entry.supervisor.quarantined
        edges = entry.host.metrics.series("supervisor/unquarantined")
        assert len(edges) == 1
        assert entry.supervisor.unquarantine_count == 1


def test_status_document_is_json_clean():
    import json

    with make_engine() as engine:
        register_small_fleet(engine, 2)
        engine.run_ticks(3)
        engine.begin_rollout(PolicySpec.make("autotune"))
        engine.run_ticks(1)
        doc = engine.status()
        encoded = json.loads(json.dumps(doc))
        assert encoded["tick"] == 4
        assert len(encoded["hosts"]) == 2
        assert encoded["active_rollout"]["status"] == "running"
        assert encoded["committed_policy"] == {
            "kind": "senpai", "params": {},
        }


def test_fleet_digest_is_seed_deterministic():
    def run() -> str:
        with make_engine() as engine:
            register_small_fleet(engine, 2)
            engine.run_ticks(12)
            return engine.fleet_digest()

    assert run() == run()
