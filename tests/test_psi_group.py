"""Unit tests for PSI group aggregation (some/full integrals)."""

import pytest

from repro.psi.group import FULL, SOME, PsiGroup, format_pressure_file
from repro.psi.types import Resource, TaskFlags

RUN = TaskFlags.RUNNING
MEM = TaskFlags.MEMSTALL
IO = TaskFlags.IOSTALL
NONE = TaskFlags.NONE


def test_requires_at_least_one_cpu():
    with pytest.raises(ValueError):
        PsiGroup("bad", ncpu=0)


def test_no_stall_no_accrual():
    group = PsiGroup("g", ncpu=4)
    group.change_task_state(NONE, RUN, 0.0)
    group.tick(10.0)
    assert group.total(Resource.MEMORY, SOME) == 0.0
    assert group.total(Resource.IO, SOME) == 0.0


def test_some_accrues_while_one_task_stalled():
    group = PsiGroup("g", ncpu=4)
    group.change_task_state(NONE, RUN, 0.0)   # task A runs
    group.change_task_state(NONE, MEM, 0.0)   # task B stalls
    group.change_task_state(MEM, RUN, 3.0)    # B recovers at t=3
    group.tick(10.0)
    assert group.total(Resource.MEMORY, SOME) == pytest.approx(3.0)
    # A was productive the whole time: no full pressure.
    assert group.total(Resource.MEMORY, FULL) == 0.0


def test_full_accrues_when_all_nonidle_stalled():
    group = PsiGroup("g", ncpu=4)
    group.change_task_state(NONE, MEM, 0.0)
    group.change_task_state(NONE, MEM, 0.0)
    group.tick(2.0)
    assert group.total(Resource.MEMORY, SOME) == pytest.approx(2.0)
    assert group.total(Resource.MEMORY, FULL) == pytest.approx(2.0)


def test_full_with_idle_bystander():
    # A sleeping task is invisible: one stalled task alone is "full".
    group = PsiGroup("g", ncpu=4)
    group.change_task_state(NONE, MEM, 0.0)
    group.tick(1.0)
    assert group.total(Resource.MEMORY, FULL) == pytest.approx(1.0)


def test_some_is_superset_of_full():
    group = PsiGroup("g", ncpu=2)
    group.change_task_state(NONE, MEM, 0.0)
    group.change_task_state(NONE, RUN, 0.0)
    group.change_task_state(RUN, MEM, 1.0)   # now both stalled
    group.change_task_state(MEM, RUN, 2.0)   # one recovers
    group.tick(3.0)
    some = group.total(Resource.MEMORY, SOME)
    full = group.total(Resource.MEMORY, FULL)
    assert some == pytest.approx(3.0)
    assert full == pytest.approx(1.0)
    assert some >= full


def test_io_and_memory_are_independent():
    group = PsiGroup("g", ncpu=2)
    group.change_task_state(NONE, IO, 0.0)
    group.tick(2.0)
    assert group.total(Resource.IO, SOME) == pytest.approx(2.0)
    assert group.total(Resource.MEMORY, SOME) == 0.0


def test_combined_stall_hits_both_resources():
    group = PsiGroup("g", ncpu=2)
    group.change_task_state(NONE, MEM | IO, 0.0)
    group.tick(1.5)
    assert group.total(Resource.MEMORY, SOME) == pytest.approx(1.5)
    assert group.total(Resource.IO, SOME) == pytest.approx(1.5)


def test_cpu_pressure_from_runnable_waiters():
    group = PsiGroup("g", ncpu=1)
    group.change_task_state(NONE, RUN, 0.0)
    group.change_task_state(NONE, TaskFlags.RUNNABLE, 0.0)
    group.tick(4.0)
    assert group.total(Resource.CPU, SOME) == pytest.approx(4.0)
    assert group.total(Resource.CPU, FULL) == 0.0


def test_time_reversal_rejected():
    group = PsiGroup("g", ncpu=1)
    group.change_task_state(NONE, RUN, 5.0)
    with pytest.raises(ValueError):
        group.change_task_state(RUN, NONE, 4.0)


def test_mismatched_transition_detected():
    group = PsiGroup("g", ncpu=1)
    with pytest.raises(RuntimeError):
        group.change_task_state(MEM, NONE, 0.0)  # never entered MEM


def test_running_averages_update_on_tick():
    group = PsiGroup("g", ncpu=1)
    group.change_task_state(NONE, MEM, 0.0)
    group.tick(20.0)  # several 2s average periods, fully stalled
    sample = group.sample(Resource.MEMORY, 20.0)
    assert sample.some_avg10 > 0.5
    assert sample.some_total == pytest.approx(20.0)


def test_productivity_loss_caps_at_compute_potential():
    group = PsiGroup("g", ncpu=2)
    for _ in range(4):
        group.change_task_state(NONE, MEM, 0.0)
    # 4 stalled tasks, potential capped at 2 CPUs: 100% loss, not 200%.
    assert group.productivity_loss(Resource.MEMORY) == pytest.approx(1.0)


def test_productivity_loss_partial():
    group = PsiGroup("g", ncpu=4)
    group.change_task_state(NONE, MEM, 0.0)
    group.change_task_state(NONE, RUN, 0.0)
    assert group.productivity_loss(Resource.MEMORY) == pytest.approx(0.5)


def test_productivity_loss_empty_group_is_zero():
    group = PsiGroup("g", ncpu=4)
    assert group.productivity_loss(Resource.MEMORY) == 0.0


def test_format_pressure_file_shape():
    group = PsiGroup("g", ncpu=4)
    text = format_pressure_file(group, Resource.MEMORY, now=0.0)
    lines = text.splitlines()
    assert lines[0].startswith("some avg10=")
    assert lines[1].startswith("full avg10=")
    assert "total=0" in lines[0]
