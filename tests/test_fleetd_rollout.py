"""Guarded rollouts: wave planning, health gates, rollback, artifacts.

The robustness headline of the control plane: a forced-bad policy
rollout must be auto-rolled-back by the health gate with zero
quarantined hosts, and the kill switch must always win.
"""

import json

import pytest

from repro.fleetd.chaos import BAD_POLICY
from repro.fleetd.engine import FleetdConfig, FleetdEngine
from repro.fleetd.health import (
    HealthGateConfig,
    HealthSample,
    evaluate_gate,
)
from repro.fleetd.policy import PolicySpec
from repro.fleetd.rollout import (
    ROLLOUT_SCHEMA_VERSION,
    RolloutConfig,
    parse_rollout_result,
    plan_waves,
)
from repro.sim.host import HostConfig

MB = 1 << 20


def make_engine(n_hosts=3) -> FleetdEngine:
    engine = FleetdEngine(FleetdConfig(
        seed=11,
        base_config=HostConfig(
            ram_gb=0.25, page_size_bytes=1 * MB, ncpu=4,
        ),
        rollout=RolloutConfig(
            canary_frac=0.34, wave_frac=1.0,
            baseline_s=20.0, soak_s=20.0,
        ),
        checkpoint_every_s=15.0,
    ))
    for i in range(n_hosts):
        engine.register(f"h{i}", "Feed" if i % 2 == 0 else "Web",
                        size_scale=0.003)
    return engine


# ----------------------------------------------------------------------
# wave planning


def test_plan_waves_canary_then_growing_waves():
    waves = plan_waves(("a", "b", "c", "d"), 0.25, 0.5)
    assert waves[0] == ["a"]  # canary: max(1, 4*0.25)
    assert [h for wave in waves for h in wave] == ["a", "b", "c", "d"]


def test_plan_waves_single_host_is_one_wave():
    assert plan_waves(("only",), 0.25, 0.5) == [["only"]]


def test_plan_waves_empty_fleet():
    assert plan_waves((), 0.25, 0.5) == []


def test_rollout_config_validation():
    with pytest.raises(ValueError, match="canary_frac"):
        RolloutConfig(canary_frac=0.0)
    with pytest.raises(ValueError, match="wave_frac"):
        RolloutConfig(wave_frac=1.5)
    with pytest.raises(ValueError, match="soak_s"):
        RolloutConfig(soak_s=0.0)


# ----------------------------------------------------------------------
# the health gate, in isolation


def test_gate_trips_on_empty_soak_window():
    verdict = evaluate_gate(
        "h0", HealthSample(samples=9),
        HealthSample(samples=0), HealthGateConfig(),
    )
    assert not verdict.passed
    assert "no metric samples" in verdict.reasons[0]


def test_gate_applies_floor_for_quiet_baselines():
    config = HealthGateConfig(psi_mult=3.0, psi_floor=0.001)
    quiet = HealthSample(psi_mem_some=0.0, samples=5)
    ok = HealthSample(psi_mem_some=0.0009, samples=5)
    bad = HealthSample(psi_mem_some=0.002, samples=5)
    assert evaluate_gate("h", quiet, ok, config).passed
    verdict = evaluate_gate("h", quiet, bad, config)
    assert not verdict.passed
    assert "psi_mem_some" in verdict.reasons[0]


def test_gate_applies_multiplier_for_loaded_baselines():
    config = HealthGateConfig(psi_mult=3.0, psi_floor=0.001)
    loaded = HealthSample(psi_mem_some=0.01, samples=5)
    within = HealthSample(psi_mem_some=0.02, samples=5)
    beyond = HealthSample(psi_mem_some=0.04, samples=5)
    assert evaluate_gate("h", loaded, within, config).passed
    assert not evaluate_gate("h", loaded, beyond, config).passed


def test_gate_trips_on_ooms_breaker_and_quarantine():
    config = HealthGateConfig()
    base = HealthSample(samples=5)
    assert not evaluate_gate(
        "h", base, HealthSample(samples=5, oom_kills=1), config
    ).passed
    assert not evaluate_gate(
        "h", base, HealthSample(samples=5, breaker_open=True), config
    ).passed
    verdict = evaluate_gate(
        "h", base, HealthSample(samples=5, quarantined=True), config
    )
    assert not verdict.passed
    assert "quarantined" in verdict.reasons[0]


# ----------------------------------------------------------------------
# end-to-end staging through the engine


def test_healthy_rollout_succeeds_in_waves():
    with make_engine() as engine:
        engine.run_ticks(25)
        engine.begin_rollout(PolicySpec.make("autotune"))
        engine.run_ticks(60)
        result = engine.rollout_result(1)
        assert result.status == "succeeded"
        assert len(result.waves) == 2  # canary [h0], then [h1, h2]
        assert result.waves[0].host_ids == ["h0"]
        assert all(w.passed for w in result.waves)
        for entry in engine.registry.values():
            assert entry.generation == 1
            assert entry.spec == PolicySpec.make("autotune")
            gens = entry.host.metrics.series("fleetd/generation")
            assert gens.values[-1] == 1.0


def test_bad_policy_is_auto_rolled_back_by_the_gate():
    """The acceptance headline: forced-bad rollout, gate trips on the
    canary, every host reverts, nobody is quarantined."""
    with make_engine() as engine:
        engine.run_ticks(25)
        engine.begin_rollout(BAD_POLICY)
        engine.run_ticks(60)
        result = engine.rollout_result(1)
        assert result.status == "rolled_back"
        assert "health gate tripped on wave 0" in result.rollback_reason
        # Only the canary ever saw the bad policy.
        assert len(result.waves) == 1
        assert result.waves[0].passed is False
        failed = [v for v in result.waves[0].verdicts if not v.passed]
        assert failed and failed[0].reasons
        for entry in engine.registry.values():
            assert entry.generation == 0
            assert entry.spec == PolicySpec()
            assert not entry.supervisor.quarantined


def test_rollback_restores_prior_controller_state():
    """Rollback decodes the pre-apply codec doc — controller state,
    not just the policy label, comes back."""
    with make_engine() as engine:
        engine.run_ticks(25)
        entry = engine.registry.get("h0")
        before = type(entry.supervisor.controller).__name__
        engine.begin_rollout(PolicySpec.make("gswap"))
        engine.run_ticks(2)
        assert type(entry.supervisor.controller).__name__ \
            == "GSwapController"
        engine.rollback_active("operator says no")
        assert type(entry.supervisor.controller).__name__ == before
        result = engine.rollout_result(1)
        assert result.status == "rolled_back"
        assert result.rollback_reason == "operator says no"


def test_queued_rollouts_run_in_order():
    with make_engine() as engine:
        engine.run_ticks(25)
        first = engine.begin_rollout(PolicySpec.make("autotune"))
        second = engine.begin_rollout(
            PolicySpec.make("senpai", {"interval_s": 4.0})
        )
        engine.run_ticks(1)
        assert engine.rollout_result(first).status == "running"
        assert engine.rollout_result(second).status == "pending"
        engine.run_ticks(120)
        assert engine.rollout_result(first).status == "succeeded"
        assert engine.rollout_result(second).status == "succeeded"
        for entry in engine.registry.values():
            assert entry.generation == 2


def test_kill_switch_reverts_applied_canary_hosts():
    with make_engine() as engine:
        engine.run_ticks(25)
        engine.begin_rollout(PolicySpec.make("autotune"))
        engine.run_ticks(2)  # canary applied, soak in progress
        assert engine.registry.get("h0").generation == 1
        killed = engine.kill_switch()
        assert killed == 1
        for entry in engine.registry.values():
            assert entry.generation == 0
            assert entry.spec == PolicySpec()
        assert engine.rollout_result(1).status == "killed"


def test_deregistered_host_is_forgotten_mid_rollout():
    with make_engine() as engine:
        engine.run_ticks(25)
        engine.begin_rollout(PolicySpec.make("autotune"))
        engine.run_ticks(2)
        engine.deregister("h1")  # not yet applied: pending wave
        engine.run_ticks(60)
        result = engine.rollout_result(1)
        assert result.status == "succeeded"
        applied = {
            h for wave in result.waves for h in wave.host_ids
        }
        assert "h1" not in applied


def test_gate_samples_late_registered_hosts_in_their_own_epoch():
    """Host metric series start at the host's own zero. A fleet
    registered long after the daemon booted must still produce soak
    samples — the gate shifts engine-time windows by each entry's
    registration epoch (regression: this used to read empty windows
    and trip 'no metric samples' on every live daemon)."""
    with make_engine(n_hosts=0) as engine:
        engine.run_ticks(400)  # daemon idles long before anyone joins
        for i in range(3):
            engine.register(f"h{i}", "Feed" if i % 2 == 0 else "Web",
                            size_scale=0.003)
        engine.run_ticks(25)
        engine.begin_rollout(PolicySpec.make("autotune"))
        engine.run_ticks(60)
        result = engine.rollout_result(1)
        assert result.status == "succeeded"
        for wave in result.waves:
            for verdict in wave.verdicts:
                assert verdict.observed.samples > 0
                assert verdict.baseline.samples > 0


# ----------------------------------------------------------------------
# the RolloutResult artifact


def test_rollout_result_envelope_round_trips():
    with make_engine() as engine:
        engine.run_ticks(25)
        engine.begin_rollout(PolicySpec.make("autotune"))
        engine.run_ticks(60)
        doc = engine.rollout_result(1).to_json()
        parsed = parse_rollout_result(json.loads(json.dumps(doc)))
        assert parsed["schema_version"] == ROLLOUT_SCHEMA_VERSION
        assert parsed["status"] == "succeeded"
        assert parsed["policy"] == {"kind": "autotune", "params": {}}
        assert parsed["waves"][0]["verdicts"][0]["passed"] is True


def test_parse_rollout_result_rejects_foreign_documents():
    with pytest.raises(ValueError, match="JSON object"):
        parse_rollout_result("nope")
    with pytest.raises(ValueError, match="schema_version"):
        parse_rollout_result({"schema_version": 99})
    with pytest.raises(ValueError, match="kind"):
        parse_rollout_result({
            "schema_version": ROLLOUT_SCHEMA_VERSION, "kind": "bench",
        })
    with pytest.raises(ValueError, match="wave list"):
        parse_rollout_result({
            "schema_version": ROLLOUT_SCHEMA_VERSION,
            "kind": "fleetd-rollout",
        })
