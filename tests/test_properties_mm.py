"""Stateful property test: memory-manager accounting invariants.

Drives a MemoryManager through arbitrary interleavings of allocation,
touching, reclaim, limit changes and page release, checking after every
step that the books balance:

* every page's state agrees with the cgroup byte counters and LRU lists;
* physical DRAM use never exceeds the host's RAM;
* swap/zswap logical counters equal the backend's stored bytes;
* hierarchical usage equals the sum of the leaves.
"""

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.kernel.mm import OutOfMemoryError
from repro.kernel.page import PageKind, PageState

from tests.helpers import make_mm

PAGE = 256 * 1024


class MmMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.now = 0.0

    @initialize(backend=st.sampled_from(["zswap", "ssd", None]))
    def setup(self, backend):
        self.mm = make_mm(ram_mb=64, backend=backend)  # 256 pages
        self.mm.create_cgroup("a")
        self.mm.create_cgroup("b")
        self.pages = []

    def _tick(self):
        self.now += 1.0

    # ------------------------------------------------------------------
    # rules

    @rule(cg=st.sampled_from(["a", "b"]), n=st.integers(1, 8))
    def alloc(self, cg, n):
        self._tick()
        try:
            pages, _ = self.mm.alloc_anon(cg, n, self.now)
        except OutOfMemoryError:
            return
        self.pages.extend(pages)

    @rule(cg=st.sampled_from(["a", "b"]), n=st.integers(1, 8),
          resident=st.booleans())
    def register(self, cg, n, resident):
        self._tick()
        try:
            pages, _ = self.mm.register_file(
                cg, n, self.now, resident=resident
            )
        except OutOfMemoryError:
            return
        self.pages.extend(pages)

    @rule(idx=st.integers(0, 10_000))
    def touch(self, idx):
        if not self.pages:
            return
        self._tick()
        try:
            self.mm.touch(self.pages[idx % len(self.pages)], self.now)
        except OutOfMemoryError:
            pass

    @rule(cg=st.sampled_from(["a", "b"]), pages=st.integers(1, 16),
          file_only=st.booleans())
    def reclaim(self, cg, pages, file_only):
        self._tick()
        self.mm.memory_reclaim(
            cg, pages * PAGE, self.now, file_only=file_only
        )

    @rule(cg=st.sampled_from(["a", "b"]),
          limit_pages=st.one_of(st.none(), st.integers(8, 128)))
    def set_limit(self, cg, limit_pages):
        self._tick()
        limit = None if limit_pages is None else limit_pages * PAGE
        self.mm.set_memory_max(cg, limit, self.now)

    @rule(idx=st.integers(0, 10_000))
    def release(self, idx):
        if not self.pages:
            return
        self._tick()
        page = self.pages.pop(idx % len(self.pages))
        self.mm.release_page(page)

    # ------------------------------------------------------------------
    # invariants

    @invariant()
    def counters_match_page_states(self):
        for name in ("a", "b"):
            cg = self.mm.cgroup(name)
            mine = [p for p in self.pages if p.cgroup == name]
            by_state = {
                state: sum(1 for p in mine if p.state is state)
                for state in PageState
            }
            resident_bytes = by_state[PageState.RESIDENT] * PAGE
            assert cg.resident_bytes == resident_bytes
            assert cg.swap_bytes == by_state[PageState.SWAPPED] * PAGE
            assert cg.zswap_bytes == by_state[PageState.ZSWAPPED] * PAGE

    @invariant()
    def lru_holds_exactly_resident_pages(self):
        for name in ("a", "b"):
            cg = self.mm.cgroup(name)
            on_lru = len(cg.lru[PageKind.ANON]) + len(cg.lru[PageKind.FILE])
            resident = sum(
                1 for p in self.pages
                if p.cgroup == name and p.state is PageState.RESIDENT
            )
            assert on_lru == resident

    @invariant()
    def host_capacity_respected(self):
        assert self.mm.used_bytes() <= self.mm.ram_bytes

    @invariant()
    def backend_books_balance(self):
        backend = self.mm.swap_backend
        if backend is None:
            return
        logical = sum(
            cg.swap_bytes + cg.zswap_bytes for cg in self.mm.cgroups()
        )
        assert backend.stored_bytes == logical

    @invariant()
    def hierarchy_sums(self):
        root = self.mm.root
        assert root.current_bytes() == sum(
            cg.resident_bytes for cg in self.mm.cgroups()
        )


TestMmStateful = MmMachine.TestCase
TestMmStateful.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None
)
