"""Cross-feature integration: combinations the unit tests don't cover."""

import pytest

from repro.core.senpai import Senpai, SenpaiConfig
from repro.kernel.page import PageState
from repro.workloads.access import HeatBands
from repro.workloads.apps import APP_CATALOG, AppProfile
from repro.workloads.base import Workload
from repro.workloads.trace import RecordingWorkload, ReplayWorkload
from repro.workloads.web import WebWorkload

from tests.helpers import make_mm, small_host

MB = 1 << 20
_GB = 1 << 30


def profile(npages=300) -> AppProfile:
    return AppProfile(
        name="app", size_gb=npages * MB / _GB, anon_frac=0.6,
        bands=HeatBands(0.3, 0.1, 0.1), compress_ratio=3.0,
        nthreads=2, cpu_cores=1.0,
    )


def test_kill_workload_on_tiered_backend_releases_both_tiers():
    host = small_host(ram_gb=1.0, backend="tiered")
    host.add_workload(Workload, profile=profile(), name="app")
    # Force mixed placement: cold (old) and warm pages.
    cg = host.mm.cgroup("app")
    cg.refault_rate.rate = 100.0
    host.mm.memory_reclaim("app", 100 * MB, now=0.0)
    backend = host.swap_backend
    counts = backend.tier_counts()
    assert counts["zswap"] + counts["ssd"] > 0
    host.kill_workload("app")
    assert backend.stored_bytes == 0
    assert backend.tier_counts() == {"zswap": 0, "ssd": 0}


def test_mm_pages_accessor_filters_by_cgroup():
    mm = make_mm()
    mm.create_cgroup("a")
    mm.create_cgroup("b")
    mm.alloc_anon("a", 3, now=0.0)
    mm.alloc_anon("b", 5, now=0.0)
    assert len(mm.pages("a")) == 3
    assert len(mm.pages("b")) == 5
    assert len(mm.pages()) == 8
    assert all(p.cgroup == "a" for p in mm.pages("a"))


def test_web_workload_is_recordable():
    """RecordingWorkload semantics extend to subclasses by composition:
    a Web run recorded through a RecordingWorkload built from the Web
    profile replays cleanly (memory behaviour only, no RPS loop)."""
    mm = make_mm(ram_mb=512, page_kb=1024)
    mm.create_cgroup("web", compressibility=4.0)
    recorder = RecordingWorkload(
        mm, APP_CATALOG["Web"], "web", seed=4
    )
    recorder.start(0.0, size_scale=0.005)
    for i in range(30):
        recorder.tick(float(i) * 2.0, 2.0)
    trace = recorder.trace
    assert trace.total_touches > 0

    mm2 = make_mm(ram_mb=512, page_kb=1024, backend="ssd")
    mm2.create_cgroup("web", compressibility=4.0)
    replayer = ReplayWorkload(mm2, trace, "web")
    replayer.start(0.0)
    for i in range(30):
        replayer.tick(float(i) * 2.0, 2.0)
    assert replayer.exhausted
    assert replayer.dropped_touches == 0


def test_senpai_file_only_then_swap_enabled_phases():
    """The deployment sequence of Section 5.1: file-only first, then
    swap-enabled — modelled as two controller phases on one host."""
    host = small_host(ram_gb=1.0, backend="zswap")
    host.add_workload(Workload, profile=profile(500), name="app")
    file_only = Senpai(SenpaiConfig(
        file_only_mode=True, reclaim_ratio=0.003, max_step_frac=0.02,
    ))
    host.add_controller(file_only)
    host.run(600.0)
    cg = host.mm.cgroup("app")
    assert cg.zswap_bytes == 0
    file_saved_phase1 = len(cg.shadow)
    assert file_saved_phase1 > 0

    # Phase 2: swap joins in.
    host._controllers.remove(file_only)
    host.add_controller(Senpai(SenpaiConfig(
        reclaim_ratio=0.003, max_step_frac=0.02,
    )))
    host.run(600.0)
    assert cg.zswap_bytes > 0


def test_oom_kill_then_backfill():
    """After an OOM kill the host's memory is reusable by a new tenant."""
    host = small_host(ram_gb=1.0, backend=None)
    host.add_workload(Workload, profile=profile(700), name="victim")
    used_before = host.mm.used_bytes()
    host.kill_workload("victim")
    assert host.mm.used_bytes() < used_before
    host.add_workload(Workload, profile=profile(700), name="tenant2")
    host.run(30.0)
    assert host.mm.cgroup("tenant2").resident_bytes > 0


def test_zswap_incompressible_page_roundtrip_state():
    mm = make_mm(backend="zswap")
    mm.create_cgroup("app", compressibility=1.0)
    pages, _ = mm.alloc_anon("app", 4, now=0.0)
    cg = mm.cgroup("app")
    cg.refault_rate.rate = 100.0
    mm.memory_reclaim("app", 2 * 256 * 1024, now=1.0)
    stored = [p for p in pages if p.state is PageState.ZSWAPPED]
    assert stored
    # Incompressible: pool pays full freight, so net saving is ~zero...
    assert mm.zswap_pool_bytes >= len(stored) * 256 * 1024
    # ...but the data still roundtrips correctly.
    result = mm.touch(stored[0], now=2.0)
    assert result.event == "zswapin"
