"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_apps(capsys):
    assert main(["list-apps"]) == 0
    out = capsys.readouterr().out
    assert "Feed" in out
    assert "Web" in out
    assert "zswap" in out and "ssd" in out


def test_list_ssds(capsys):
    assert main(["list-ssds"]) == 0
    out = capsys.readouterr().out
    assert "9300" in out  # device A's p99
    assert "470" in out   # device G's p99


def test_cost_table(capsys):
    assert main(["cost-table"]) == 0
    out = capsys.readouterr().out
    assert "33.0" in out


def test_run_host_quick(capsys):
    code = main([
        "run-host", "--app", "Feed", "--duration", "120",
        "--size-scale", "0.02",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "net savings %" in out
    assert "PSI memory" in out


def test_run_host_unknown_app(capsys):
    assert main(["run-host", "--app", "Nope", "--duration", "1"]) == 2
    assert "unknown app" in capsys.readouterr().err


def test_run_host_backend_none(capsys):
    code = main([
        "run-host", "--app", "Feed", "--backend", "none",
        "--duration", "60", "--size-scale", "0.02",
    ])
    assert code == 0
    out = capsys.readouterr().out
    line = next(l for l in out.splitlines() if "offloaded (MB)" in l)
    assert line.split()[-1] == "0.0"


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_host_web(capsys):
    code = main([
        "run-host", "--app", "Web", "--backend", "zswap",
        "--duration", "60", "--size-scale", "0.02",
    ])
    assert code == 0


def test_run_ab_quick(capsys):
    code = main([
        "run-ab", "--app", "Feed", "--control", "none",
        "--treatment", "zswap", "--duration", "120",
        "--size-scale", "0.02",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "A/B results" in out
    assert "app/resident_bytes" in out


def test_run_ab_unknown_app(capsys):
    code = main(["run-ab", "--app", "Nope", "--duration", "1"])
    assert code == 2
