"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_apps(capsys):
    assert main(["list-apps"]) == 0
    out = capsys.readouterr().out
    assert "Feed" in out
    assert "Web" in out
    assert "zswap" in out and "ssd" in out


def test_list_ssds(capsys):
    assert main(["list-ssds"]) == 0
    out = capsys.readouterr().out
    assert "9300" in out  # device A's p99
    assert "470" in out   # device G's p99


def test_cost_table(capsys):
    assert main(["cost-table"]) == 0
    out = capsys.readouterr().out
    assert "33.0" in out


def test_run_host_quick(capsys):
    code = main([
        "run-host", "--app", "Feed", "--duration", "120",
        "--size-scale", "0.02",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "net savings %" in out
    assert "PSI memory" in out


def test_run_host_unknown_app(capsys):
    assert main(["run-host", "--app", "Nope", "--duration", "1"]) == 2
    assert "unknown app" in capsys.readouterr().err


def test_run_host_backend_none(capsys):
    code = main([
        "run-host", "--app", "Feed", "--backend", "none",
        "--duration", "60", "--size-scale", "0.02",
    ])
    assert code == 0
    out = capsys.readouterr().out
    line = next(l for l in out.splitlines() if "offloaded (MB)" in l)
    assert line.split()[-1] == "0.0"


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_host_web(capsys):
    code = main([
        "run-host", "--app", "Web", "--backend", "zswap",
        "--duration", "60", "--size-scale", "0.02",
    ])
    assert code == 0


def test_run_ab_quick(capsys):
    code = main([
        "run-ab", "--app", "Feed", "--control", "none",
        "--treatment", "zswap", "--duration", "120",
        "--size-scale", "0.02",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "A/B results" in out
    assert "app/resident_bytes" in out


def test_run_ab_unknown_app(capsys):
    code = main(["run-ab", "--app", "Nope", "--duration", "1"])
    assert code == 2


def test_bench_quick_writes_report_and_self_checks(tmp_path, capsys):
    out_path = str(tmp_path / "BENCH_5.json")
    assert main([
        "bench", "--quick", "--workers", "2", "--out", out_path,
    ]) == 0
    assert "report written to" in capsys.readouterr().out
    # Gate the same machine's quick run against itself: must pass.
    again = str(tmp_path / "BENCH_again.json")
    assert main([
        "bench", "--quick", "--workers", "2", "--out", again,
        "--check", out_path, "--tolerance", "0.9",
    ]) == 0
    assert "regression gate passed" in capsys.readouterr().out


def test_bench_check_rejects_missing_baseline(tmp_path, capsys):
    out_path = str(tmp_path / "BENCH_5.json")
    code = main([
        "bench", "--quick", "--workers", "2", "--out", out_path,
        "--check", str(tmp_path / "nope.json"),
    ])
    assert code == 2
    assert "cannot use baseline" in capsys.readouterr().err


def test_crash_equivalence_parallel_seed_sweep(capsys):
    """The crash-equivalence proof must keep passing when the seed
    sweep fans out over worker processes."""
    code = main([
        "crash-equivalence", "--seeds", "1", "2", "--workers", "2",
        "--duration", "120",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "all 2 crash-equivalence runs passed" in out


def test_fleet_rollout_reports_savings(capsys):
    code = main([
        "fleet", "--apps", "Feed", "Web", "--count", "1",
        "--duration", "60", "--ram-gb", "0.25",
        "--size-scale", "0.003", "--workers", "2",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "fleet savings" in out
    assert "all 2 planned hosts completed" in out
    assert "merged digest" in out


def test_fleet_rejects_unknown_app(capsys):
    code = main(["fleet", "--apps", "NotAnApp"])
    assert code == 2
    assert "unknown app" in capsys.readouterr().err


def test_chaos_fleet_writes_verdict_json(tmp_path, capsys):
    # Seed 5 at 60s draws crashes + a slowdown but no hang, so the run
    # never waits out a 30s deadline kill.
    out_path = tmp_path / "verdict.json"
    code = main([
        "chaos", "--fleet", "--seeds", "5", "--duration", "60",
        "--out", str(out_path),
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "PASS" in out
    assert "all 1 fleet-chaos runs passed" in out
    from repro.faults.chaos import load_chaos_verdicts

    doc = load_chaos_verdicts(str(out_path))  # validates the envelope
    assert doc["mode"] == "fleet"
    assert doc["seeds"] == [5]
    assert doc["config"]["duration_s"] == 60.0
    assert len(doc["verdicts"]) == 1
    verdict = doc["verdicts"][0]
    assert verdict["seed"] == 5 and verdict["passed"] is True


def test_chaos_hang_timeout_flag_is_threaded(capsys):
    # The flag must reach ChaosConfig; a tiny sweep proves the plumbing.
    from repro.cli import build_parser

    args = build_parser().parse_args(
        ["chaos", "--hang-timeout", "45.5"]
    )
    assert args.hang_timeout == 45.5


def test_chaos_fleet_and_fleetd_are_mutually_exclusive(capsys):
    code = main(["chaos", "--fleet", "--fleetd"])
    assert code == 2
    assert "mutually exclusive" in capsys.readouterr().err


def test_chaos_fleetd_writes_versioned_verdict(tmp_path, capsys):
    from repro.faults.chaos import load_chaos_verdicts

    out_path = tmp_path / "verdict.json"
    code = main([
        "chaos", "--fleetd", "--seeds", "1", "--out", str(out_path),
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "all 1 fleetd-chaos runs passed" in out
    doc = load_chaos_verdicts(str(out_path))
    assert doc["mode"] == "fleetd"
    assert doc["seeds"] == [1]
    assert doc["config"]["hosts"] == 4
    verdict = doc["verdicts"][0]
    assert verdict["passed"] is True
    assert verdict["digest"] == verdict["rerun_digest"]


def test_fleet_resilience_knobs_are_threaded(capsys):
    # The knobs must reach FleetResilienceConfig without derailing a
    # fault-free rollout.
    code = main([
        "fleet", "--apps", "Feed", "--count", "1",
        "--duration", "60", "--ram-gb", "0.25",
        "--size-scale", "0.003", "--workers", "1",
        "--max-attempts", "2", "--deadline-min-s", "5",
        "--checkpoint-every-sim-s", "30",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "all 1 planned hosts completed" in out


def test_fleet_rejects_bad_resilience_knobs(capsys):
    code = main([
        "fleet", "--apps", "Feed", "--count", "1",
        "--duration", "60", "--max-attempts", "0",
    ])
    assert code == 2
    assert "bad resilience knobs" in capsys.readouterr().err


def test_parse_policy_args_decodes_values_as_json():
    from repro.cli import _parse_policy_args

    doc = _parse_policy_args(
        "senpai", ["interval_s=4.0", "psi_threshold=0.01"]
    )
    assert doc == {
        "kind": "senpai",
        "params": {"interval_s": 4.0, "psi_threshold": 0.01},
    }
    assert _parse_policy_args("senpai", None)["params"] == {}
    with pytest.raises(ValueError, match="key=value"):
        _parse_policy_args("senpai", ["no-equals-sign"])


def test_fleetd_cli_round_trip(tmp_path, capsys):
    """Every client verb over a live daemon socket."""
    from repro.fleetd.engine import FleetdConfig, FleetdEngine
    from repro.fleetd.rollout import RolloutConfig
    from repro.fleetd.server import FleetdServer
    from repro.sim.host import HostConfig

    MB = 1 << 20
    engine = FleetdEngine(FleetdConfig(
        seed=11,
        base_config=HostConfig(
            ram_gb=0.25, page_size_bytes=1 * MB, ncpu=4,
        ),
        rollout=RolloutConfig(
            canary_frac=0.34, wave_frac=1.0,
            baseline_s=20.0, soak_s=20.0,
        ),
        checkpoint_every_s=15.0,
        spool_dir=str(tmp_path / "spool"),
    ))
    sock = str(tmp_path / "fleetd.sock")
    server = FleetdServer(engine, sock, tick_interval_s=5.0)
    server.start()
    try:
        for i in range(3):
            assert main([
                "fleetd", "register", f"h{i}", "--socket", sock,
                "--app", "Feed" if i % 2 == 0 else "Web",
            ]) == 0
        assert main(["fleetd", "run", "--ticks", "25",
                     "--socket", sock]) == 0
        result_path = tmp_path / "rollout.json"
        assert main([
            "fleetd", "rollout", "--policy", "autotune",
            "--wait", "--out", str(result_path), "--socket", sock,
        ]) == 0
        assert main(["fleetd", "rollout-status", "--id", "1",
                     "--socket", sock]) == 0
        assert main(["fleetd", "status", "--socket", sock]) == 0
        assert main(["fleetd", "reset-quarantine", "h0",
                     "--socket", sock]) == 0
        assert main(["fleetd", "deregister", "h2",
                     "--socket", sock]) == 0
        assert main(["fleetd", "rollback", "--socket", sock]) == 0
        assert main(["fleetd", "kill-switch", "--socket", sock]) == 0
        # Frozen fleet: a new rollout is refused with exit 1.
        assert main([
            "fleetd", "rollout", "--policy", "senpai", "--socket", sock,
        ]) == 1
        assert main(["fleetd", "stop", "--socket", sock]) == 0
    finally:
        server.stop()
        engine.close()
    out, err = capsys.readouterr()
    assert "registered h0" in out
    assert "rollout 1: succeeded" in out
    assert "was not quarantined" in out
    assert "no active rollout" in out
    assert "kill switch engaged" in out
    assert "kill switch" in err
    import json

    from repro.fleetd.rollout import parse_rollout_result

    envelope = parse_rollout_result(
        json.loads(result_path.read_text())
    )
    assert envelope["status"] == "succeeded"
    assert envelope["policy"]["kind"] == "autotune"


def test_fleetd_cli_reports_unreachable_daemon(tmp_path, capsys):
    sock = str(tmp_path / "nothing.sock")
    assert main(["fleetd", "status", "--socket", sock]) == 1
    assert "cannot reach" in capsys.readouterr().err
