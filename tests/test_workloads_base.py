"""Unit tests for the generic workload driver."""

import pytest

from repro.kernel.page import PageKind, PageState
from repro.workloads.access import HeatBands
from repro.workloads.apps import AppProfile
from repro.workloads.base import TickResult, Workload

from tests.helpers import make_mm

PAGE = 256 * 1024
_GB = 1 << 30


def tiny_profile(**overrides) -> AppProfile:
    defaults = dict(
        name="tiny",
        size_gb=100 * PAGE / _GB,  # 100 pages
        anon_frac=0.6,
        bands=HeatBands(0.5, 0.1, 0.1),
        compress_ratio=3.0,
        nthreads=2,
        cpu_cores=2.0,
    )
    defaults.update(overrides)
    return AppProfile(**defaults)


def make_workload(mm=None, profile=None, **overrides):
    mm = mm or make_mm()
    profile = profile or tiny_profile(**overrides)
    mm.create_cgroup("app", compressibility=profile.compress_ratio)
    return Workload(mm, profile, "app", seed=11)


def test_start_splits_anon_and_file():
    w = make_workload()
    w.start(0.0)
    anon = [p for p in w.pages if p.kind is PageKind.ANON]
    file = [p for p in w.pages if p.kind is PageKind.FILE]
    assert len(anon) == 60
    assert len(file) == 40
    # Non-preload profile: file pages start on disk.
    assert all(p.state is PageState.ABSENT for p in file)


def test_start_with_preload_makes_file_resident():
    w = make_workload(file_preload=True)
    w.start(0.0)
    file = [p for p in w.pages if p.kind is PageKind.FILE]
    assert all(p.state is PageState.RESIDENT for p in file)


def test_double_start_rejected():
    w = make_workload()
    w.start(0.0)
    with pytest.raises(RuntimeError):
        w.start(1.0)


def test_tick_before_start_rejected():
    w = make_workload()
    with pytest.raises(RuntimeError):
        w.tick(0.0, 1.0)


def test_size_scale_shrinks_population():
    w = make_workload()
    w.start(0.0, size_scale=0.5)
    assert w.npages_total == 50


def test_tick_touches_and_faults():
    w = make_workload()
    w.start(0.0)
    total_events = 0
    for i in range(20):
        tick = w.tick(float(i) * 6.0, 6.0)
        total_events += sum(tick.events.values())
    assert total_events > 0
    # Lazily-loaded file pages were read in at some point.
    assert w.mm.cgroup("app").vmstat.pgpgin_file > 0


def test_tick_cpu_demand_from_profile():
    w = make_workload()
    w.start(0.0)
    tick = w.tick(0.0, 2.0)
    assert tick.cpu_seconds == pytest.approx(4.0)  # 2 cores * 2 s


def test_stall_buckets_classified():
    mm = make_mm(backend="ssd")
    profile = tiny_profile()
    mm.create_cgroup("app")
    w = Workload(mm, profile, "app", seed=11)
    w.start(0.0)
    mm.memory_reclaim("app", 30 * PAGE, now=0.0)
    stalls = TickResult(name="acc")
    for i in range(30):
        tick = w.tick(float(i), 1.0)
        stalls.stall_mem_s += tick.stall_mem_s
        stalls.stall_io_s += tick.stall_io_s
        stalls.stall_both_s += tick.stall_both_s
    # SSD swap-ins and refaults land in the both-bucket; cold file
    # reads land in io-only.
    assert stalls.stall_both_s > 0.0
    assert stalls.stall_io_s > 0.0
    assert stalls.total_stall_s == (
        stalls.stall_mem_s + stalls.stall_io_s + stalls.stall_both_s
    )


def test_growth_allocates_over_time():
    w = make_workload(growth_gb_per_hour=3600 * 10 * PAGE / _GB)
    w.start(0.0)
    before = w.npages_total
    for i in range(10):
        w.tick(float(i), 1.0)  # 10 pages/s of growth
    assert w.npages_total == before + 100


def test_restart_rebuilds_population():
    w = make_workload()
    w.start(0.0)
    w.mm.memory_reclaim("app", 20 * PAGE, now=1.0)
    old_pages = list(w.pages)
    w.restart(2.0)
    assert w.started
    assert w.npages_total == len(old_pages)
    assert all(p not in old_pages for p in w.pages)
    cg = w.mm.cgroup("app")
    assert cg.zswap_bytes == 0  # offloaded state dropped with restart


def test_tick_result_helpers():
    tick = TickResult(name="x")
    tick._record("hit")
    tick._record("hit")
    assert tick.count("hit") == 2
    assert tick.count("missing") == 0
