"""Unit tests for the online-tuning Senpai (§3.3 future work)."""

import pytest

from repro.core.autotune import AutoTuneConfig, AutoTuneSenpai
from repro.core.senpai import Senpai, SenpaiConfig
from repro.workloads.access import HeatBands
from repro.workloads.apps import AppProfile
from repro.workloads.base import Workload

from tests.helpers import small_host

MB = 1 << 20
_GB = 1 << 30


def profile(hot=0.2, npages=500) -> AppProfile:
    return AppProfile(
        name="app",
        size_gb=npages * MB / _GB,
        anon_frac=0.6,
        bands=HeatBands(hot, 0.05, 0.05),
        compress_ratio=3.0,
        cold_never_share=0.2,
        nthreads=2,
        cpu_cores=1.0,
    )


def test_adapt_raises_when_calm():
    tuner = AutoTuneSenpai(AutoTuneConfig(settle_periods=2))
    base = tuner.config.reclaim_ratio
    for _ in range(10):
        tuner._adapt("cg", pressure=0.0)
    assert tuner.ratio_for("cg") > base


def test_adapt_backs_off_on_pressure():
    tuner = AutoTuneSenpai(AutoTuneConfig(settle_periods=0))
    for _ in range(10):
        tuner._adapt("cg", pressure=0.0)
    raised = tuner.ratio_for("cg")
    tuner._adapt("cg", pressure=1.5)
    assert tuner.ratio_for("cg") == pytest.approx(raised * 0.5)


def test_ratio_bounds_respected():
    config = AutoTuneConfig(settle_periods=0, ratio_max=0.002)
    tuner = AutoTuneSenpai(config)
    for _ in range(200):
        tuner._adapt("cg", pressure=0.0)
    assert tuner.ratio_for("cg") == pytest.approx(0.002)
    for _ in range(200):
        tuner._adapt("cg", pressure=2.0)
    assert tuner.ratio_for("cg") == pytest.approx(config.ratio_min)


def test_mid_pressure_holds_steady():
    tuner = AutoTuneSenpai(AutoTuneConfig(settle_periods=0))
    base = tuner.ratio_for("cg")
    for _ in range(20):
        tuner._adapt("cg", pressure=0.8)  # between raise_below and 1.0
    assert tuner.ratio_for("cg") == pytest.approx(base)


def test_autotune_beats_fixed_production_config_on_cold_workload():
    """On a cold, tolerant workload the tuner finds a faster ratio than
    the fixed production trickle, saving more in the same time."""
    def run(controller):
        host = small_host(ram_gb=1.0, backend="zswap")
        host.add_workload(Workload, profile=profile(), name="app")
        host.add_controller(controller)
        host.run(1800.0)
        return host.mm.cgroup("app").offloaded_bytes()

    fixed = run(Senpai(SenpaiConfig()))
    tuned = run(AutoTuneSenpai(AutoTuneConfig()))
    assert tuned > 1.3 * fixed


def test_autotune_still_respects_threshold_on_hot_workload():
    host = small_host(ram_gb=1.0, backend="zswap")
    host.add_workload(Workload, profile=profile(hot=0.85), name="app")
    tuner = host.add_controller(AutoTuneSenpai(AutoTuneConfig()))
    host.run(1800.0)
    from repro.psi.types import Resource

    sample = host.psi.group("app").sample(
        Resource.MEMORY, host.clock.now
    )
    # Tuning never overrides the pressure contract.
    assert sample.some_avg300 < 0.01


def test_ratio_series_recorded():
    host = small_host(ram_gb=1.0, backend="zswap")
    host.add_workload(Workload, profile=profile(), name="app")
    host.add_controller(AutoTuneSenpai(AutoTuneConfig()))
    host.run(120.0)
    assert "app/senpai_ratio" in host.metrics
