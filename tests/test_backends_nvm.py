"""Unit tests for the NVM / CXL far-memory backends."""

import numpy as np
import pytest

from repro.backends.nvm import (
    CXL_SPEC,
    NVM_SPEC,
    FarMemoryBackend,
    FarMemoryFullError,
    make_cxl,
    make_nvm,
)

PAGE = 4096
MB = 1 << 20


def test_specs_ordering():
    """CXL is faster than NVM, which is faster than any Figure 5 SSD."""
    from repro.backends.ssd import SSD_CATALOG

    assert CXL_SPEC.read_us_per_4k < NVM_SPEC.read_us_per_4k
    fastest_ssd_p50_us = SSD_CATALOG["G"].device_spec().read_latency_p50_us
    assert NVM_SPEC.read_us_per_4k < fastest_ssd_p50_us


def test_capacity_validation():
    with pytest.raises(ValueError):
        FarMemoryBackend(NVM_SPEC, np.random.default_rng(0), 0)


def test_store_load_free_roundtrip():
    nvm = make_nvm(np.random.default_rng(0), capacity_bytes=16 * PAGE)
    cost = nvm.store(PAGE, 2.0, now=0.0, page_id=1)
    assert cost > 0.0
    assert nvm.stored_bytes == PAGE
    latency = nvm.load(PAGE, 2.0, now=1.0, page_id=1)
    assert 0.5e-6 < latency < 20e-6  # ~2 us/4k with jitter
    nvm.free(PAGE, 2.0, page_id=1)
    assert nvm.stored_bytes == 0


def test_capacity_enforced():
    nvm = make_nvm(np.random.default_rng(0), capacity_bytes=PAGE)
    nvm.store(PAGE, 2.0, now=0.0)
    with pytest.raises(FarMemoryFullError):
        nvm.store(PAGE, 2.0, now=0.0)


def test_far_memory_is_not_block_io():
    assert not make_nvm(np.random.default_rng(0), MB).blocks_on_io
    assert not make_cxl(np.random.default_rng(0), MB).blocks_on_io


def test_nvm_wear_tracked_cxl_not():
    nvm = make_nvm(np.random.default_rng(0), MB)
    cxl = make_cxl(np.random.default_rng(0), MB)
    nvm.store(PAGE, 2.0, now=0.0)
    cxl.store(PAGE, 2.0, now=0.0)
    assert nvm.wear_fraction > 0.0
    assert cxl.wear_fraction == 0.0


def test_latency_scales_with_page_size():
    cxl = make_cxl(np.random.default_rng(3), 64 * MB)
    cxl.store(MB, 2.0, now=0.0, page_id=1)
    big = cxl.load(MB, 2.0, now=1.0, page_id=1)
    # 256 constituent pages at ~0.4us each ~ 100us.
    assert 30e-6 < big < 400e-6


def test_no_dram_overhead():
    assert make_nvm(np.random.default_rng(0), MB).dram_overhead_bytes == 0


def test_host_integration_cxl_offloads_deep():
    """CXL's near-DRAM latency lets Senpai offload far more than an SSD
    at the same pressure threshold — the Section 5.2 motivation."""
    from repro.core.senpai import Senpai, SenpaiConfig
    from repro.workloads.access import HeatBands
    from repro.workloads.apps import AppProfile
    from repro.workloads.base import Workload

    from tests.helpers import small_host

    _GB = 1 << 30
    profile = AppProfile(
        name="app", size_gb=600 * MB / _GB, anon_frac=0.7,
        bands=HeatBands(0.35, 0.1, 0.1), compress_ratio=1.2,
        cold_never_share=0.05, nthreads=2, cpu_cores=1.0,
    )

    def run(backend, model="B"):
        host = small_host(ram_gb=1.0, backend=backend, ssd_model=model)
        host.add_workload(Workload, profile=profile, name="app")
        host.add_controller(Senpai(SenpaiConfig(
            reclaim_ratio=0.005, max_step_frac=0.03,
            write_limit_mb_s=None,
        )))
        host.run(1200.0)
        return host.mm.cgroup("app").offloaded_bytes()

    assert run("cxl") > run("ssd")
