"""Tests of the tick-share profiler behind ``repro bench --profile``.

A tiny profiled run (a couple of simulated seconds of warm-up, a few
dozen ticks) is enough to validate the document contract; the real
CI run uses the defaults in :mod:`repro.perf.profile`.
"""

import pytest

from repro.cli import main
from repro.lint.hotpath import PROFILE_SCHEMA_VERSION, load_profile
from repro.perf import PROFILE_DEFAULT_OUT, run_profile, write_profile

REQUIRED_KEYS = {
    "file", "line", "name", "ncalls", "tottime_s", "cumtime_s",
    "tick_share",
}


@pytest.fixture(scope="module")
def document():
    return run_profile(steps=25, warmup_s=2.0)


def test_document_matches_the_lint_contract(document):
    assert document["schema_version"] == PROFILE_SCHEMA_VERSION
    assert document["steps"] == 25
    assert document["total_tt_s"] > 0.0
    functions = document["functions"]
    assert functions
    for entry in functions:
        assert set(entry) == REQUIRED_KEYS
        assert 0.0 <= entry["tick_share"] <= 1.0
        assert "<" not in entry["file"] and "~" not in entry["file"]


def test_functions_are_sorted_hottest_first(document):
    shares = [entry["tick_share"] for entry in document["functions"]]
    assert shares == sorted(shares, reverse=True)


def test_tick_loop_entrypoints_are_measured(document):
    # The profiled region drives Host.step directly, so step and the
    # batched page-touch path must both appear.
    names = {entry["name"] for entry in document["functions"]}
    assert "step" in names
    assert "touch_batch" in names


def test_write_profile_round_trips_through_load_profile(
    document, tmp_path
):
    path = write_profile(document, tmp_path / "profile.json")
    assert load_profile(path) == document


def test_bench_profile_cli_writes_the_default_out(
    tmp_path, capsys, monkeypatch
):
    monkeypatch.chdir(tmp_path)
    rc = main(["bench", "--profile", "--quick", "--profile-steps", "10"])
    captured = capsys.readouterr()
    assert rc == 0
    out = tmp_path / PROFILE_DEFAULT_OUT
    assert out.exists()
    document = load_profile(out)
    assert document["steps"] == 10
    assert "tmo-lint --flow --profile" in captured.out


def test_bench_profile_cli_honours_out_override(
    tmp_path, capsys, monkeypatch
):
    monkeypatch.chdir(tmp_path)
    rc = main([
        "bench", "--profile", "--quick", "--profile-steps", "10",
        "--out", "custom.json",
    ])
    capsys.readouterr()
    assert rc == 0
    assert (tmp_path / "custom.json").exists()
    assert not (tmp_path / PROFILE_DEFAULT_OUT).exists()
