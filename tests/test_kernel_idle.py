"""Unit tests for idle-page tracking and age histograms."""

import pytest

from repro.kernel.idle import (
    DEFAULT_AGE_BUCKETS_S,
    AgeHistogram,
    IdlePageTracker,
)

from tests.helpers import make_mm

PAGE = 256 * 1024


def test_histogram_bucket_assignment():
    hist = AgeHistogram(edges=(60.0, 300.0))
    for age in (10.0, 59.9, 100.0, 299.0, 300.0, 9000.0):
        hist.add(age)
    assert hist.counts == [2, 2, 2]
    assert hist.total_pages == 6


def test_histogram_rejects_unsorted_edges():
    with pytest.raises(ValueError):
        AgeHistogram(edges=(300.0, 60.0))


def test_fraction_older_than():
    hist = AgeHistogram(edges=(60.0, 300.0))
    for age in (10.0, 100.0, 400.0, 500.0):
        hist.add(age)
    assert hist.fraction_older_than(300.0) == pytest.approx(0.5)
    with pytest.raises(ValueError):
        hist.fraction_older_than(123.0)


def test_empty_histogram_fraction_zero():
    hist = AgeHistogram(edges=(60.0,))
    assert hist.fraction_older_than(60.0) == 0.0


def test_scan_counts_only_resident_pages():
    mm = make_mm()
    mm.create_cgroup("app")
    mm.alloc_anon("app", 10, now=0.0)
    mm.memory_reclaim("app", 3 * PAGE, now=1.0)
    tracker = IdlePageTracker(mm)
    hist = tracker.scan("app", now=100.0)
    assert hist.total_pages == 7  # 3 pages offloaded


def test_scan_ages_from_last_access():
    mm = make_mm()
    mm.create_cgroup("app")
    pages, _ = mm.alloc_anon("app", 4, now=0.0)
    mm.touch(pages[0], now=950.0)
    tracker = IdlePageTracker(mm)
    hist = tracker.scan("app", now=1000.0, buckets=(60.0, 500.0))
    # One page touched 50 s ago; three idle for 1000 s.
    assert hist.counts == [1, 0, 3]


def test_cold_bytes_threshold():
    mm = make_mm()
    mm.create_cgroup("app")
    pages, _ = mm.alloc_anon("app", 6, now=0.0)
    for page in pages[:2]:
        mm.touch(page, now=990.0)
    tracker = IdlePageTracker(mm)
    assert tracker.cold_bytes("app", now=1000.0,
                              age_threshold_s=60.0) == 4 * PAGE


def test_scan_cpu_cost_scales_with_pages():
    """The overhead TMO avoids: scanning costs CPU per page, every scan."""
    mm = make_mm()
    mm.create_cgroup("app")
    mm.alloc_anon("app", 50, now=0.0)
    tracker = IdlePageTracker(mm)
    tracker.scan("app", now=10.0)
    one_scan = tracker.scan_cpu_seconds
    tracker.scan("app", now=20.0)
    assert tracker.scan_cpu_seconds == pytest.approx(2 * one_scan)
    assert tracker.pages_scanned == 100


def test_cold_bytes_charges_every_page_inspected():
    """Regression: ``cold_bytes`` walks the whole resident LRU, so its
    scan cost covers every page inspected — not just the cold ones it
    ends up counting (the undercount made idle scanning look cheaper
    than Figure 2's CPU-overhead argument assumes)."""
    from repro.kernel.idle import IDLE_SCAN_COST_S

    mm = make_mm()
    mm.create_cgroup("app")
    pages, _ = mm.alloc_anon("app", 8, now=0.0)
    for page in pages[:5]:
        mm.touch(page, now=995.0)  # warm: only 3 pages stay cold
    tracker = IdlePageTracker(mm)
    cold = tracker.cold_bytes("app", now=1000.0, age_threshold_s=60.0)
    assert cold == 3 * PAGE
    assert tracker.pages_scanned == 8
    assert tracker.scan_cpu_seconds == pytest.approx(
        8 * IDLE_SCAN_COST_S
    )


def test_default_buckets_cover_figure2_windows():
    assert 60.0 in DEFAULT_AGE_BUCKETS_S
    assert 120.0 in DEFAULT_AGE_BUCKETS_S
    assert 300.0 in DEFAULT_AGE_BUCKETS_S
