"""Unit tests for the PSI running averages."""

import math

import pytest

from repro.psi.avgs import PSI_AVG_PERIOD, PSI_WINDOWS, RunningAverages


def test_windows_match_the_kernel():
    assert PSI_WINDOWS == (10.0, 60.0, 300.0)
    assert PSI_AVG_PERIOD == 2.0


def test_initially_zero():
    avgs = RunningAverages()
    assert avgs.avg10 == 0.0
    assert avgs.avg60 == 0.0
    assert avgs.avg300 == 0.0


def test_single_full_period_update():
    avgs = RunningAverages()
    avgs.update(total=2.0)  # fully stalled for one 2s period
    expected = 1.0 - math.exp(-2.0 / 10.0)
    assert avgs.avg10 == pytest.approx(expected)


def test_converges_to_constant_pressure():
    avgs = RunningAverages()
    total = 0.0
    for _ in range(500):
        total += 0.5  # 25% stall per 2s period
        avgs.update(total)
    assert avgs.avg10 == pytest.approx(0.25, abs=1e-3)
    assert avgs.avg300 == pytest.approx(0.25, abs=0.02)


def test_shorter_window_reacts_faster():
    avgs = RunningAverages()
    total = 0.0
    for _ in range(5):
        total += 2.0
        avgs.update(total)
    assert avgs.avg10 > avgs.avg60 > avgs.avg300 > 0.0


def test_sample_clamped_to_one():
    avgs = RunningAverages()
    avgs.update(total=100.0)  # bogus: more stall than wall time
    assert avgs.avg10 <= 1.0 - math.exp(-0.2) + 1e-12


def test_negative_delta_treated_as_zero():
    avgs = RunningAverages()
    avgs.update(total=2.0)
    before = avgs.avg10
    avgs.update(total=1.0)  # totals are monotonic; guard anyway
    assert avgs.avg10 < before  # decayed toward zero, not negative
    assert avgs.avg10 >= 0.0


def test_rejects_nonpositive_period():
    avgs = RunningAverages()
    with pytest.raises(ValueError):
        avgs.update(total=1.0, period_s=0.0)


def test_decay_to_zero_without_stall():
    avgs = RunningAverages()
    avgs.update(total=2.0)
    for _ in range(100):
        avgs.update(total=2.0)  # no new stall
    assert avgs.avg10 == pytest.approx(0.0, abs=1e-6)
