"""Per-rule tests of repro.lint against the checked-in fixtures.

Each bad fixture's violations are asserted by exact rule id and line
number, so a rule that drifts (fires on a different node, or stops
firing) fails loudly rather than silently changing coverage.
"""

from pathlib import Path

import pytest

from repro.lint import all_rule_ids, default_config, lint_file, lint_paths
from repro.lint.engine import PARSE_ERROR_RULE
from repro.lint.flow import flow_rule_ids

FIXTURES = Path(__file__).parent / "lint_fixtures"

ALL_RULES = sorted(all_rule_ids())

#: rule id -> lines its bad fixture must flag (and nothing else).
EXPECTED_BAD_LINES = {
    "TMO001": [9, 10, 11, 12],
    "TMO002": [8, 9, 10],
    "TMO003": [6, 8, 9, 10],
    "TMO004": [7, 9, 10, 15],
    "TMO005": [6, 11, 15],
    "TMO006": [5, 7, 11],
    "TMO007": [11],
    "TMO008": [7, 14],
    "TMO013": [3, 4, 5, 6],
}


def fixture(name: str) -> Path:
    path = FIXTURES / name
    assert path.exists(), f"missing fixture {name}"
    return path


@pytest.mark.parametrize("rule_id", sorted(EXPECTED_BAD_LINES))
def test_bad_fixture_flags_expected_lines(rule_id):
    path = fixture(f"{rule_id.lower()}_bad.py")
    found = lint_file(path, select=[rule_id])
    assert [v.rule_id for v in found] == [rule_id] * len(found)
    assert [v.line for v in found] == EXPECTED_BAD_LINES[rule_id]


@pytest.mark.parametrize("rule_id", sorted(EXPECTED_BAD_LINES))
def test_good_fixture_is_clean_under_every_rule(rule_id):
    path = fixture(f"{rule_id.lower()}_good.py")
    assert lint_file(path, select=ALL_RULES) == []


def test_registry_covers_exactly_the_documented_rules():
    # Per-file rules each have a bad fixture here; the whole-program
    # flow rules are exercised against the flowpkg fixture package in
    # test_lint_flow.py.
    per_file = sorted(set(ALL_RULES) - flow_rule_ids())
    assert per_file == sorted(EXPECTED_BAD_LINES)
    assert flow_rule_ids() == {
        "TMO009", "TMO010", "TMO011", "TMO012",
        "TMO014", "TMO015", "TMO016",
        "TMO017", "TMO018", "TMO019", "TMO020", "TMO021",
    }


def test_violations_carry_snippets_and_columns():
    found = lint_file(fixture("tmo008_bad.py"), select=["TMO008"])
    assert found[0].snippet.strip() == "except:"
    assert all(v.col >= 0 for v in found)
    assert all(v.path.endswith("tmo008_bad.py") for v in found)


# ----------------------------------------------------------------------
# suppression


def test_inline_ignore_suppresses_named_rule():
    found = lint_file(fixture("ignored.py"), select=["TMO001"])
    # Lines 7 (ignore[TMO001]) and 11 (ignore[*]) are suppressed;
    # only the unsanctioned call on line 15 survives.
    assert [(v.rule_id, v.line) for v in found] == [("TMO001", 15)]


def test_skip_file_comment_suppresses_everything():
    assert lint_file(fixture("skipped.py"), select=ALL_RULES) == []


def test_unparseable_file_reports_tmo000():
    found = lint_file(fixture("unparseable.py"))
    assert [v.rule_id for v in found] == [PARSE_ERROR_RULE]
    assert found[0].line == 4
    assert "parsed" in found[0].message


# ----------------------------------------------------------------------
# scope configuration


def test_scope_rules_differ_by_directory():
    config = default_config()
    src_rules = config.rules_for("src/repro/kernel/mm.py")
    bench_rules = config.rules_for("benchmarks/test_microbench.py")
    test_rules = config.rules_for("tests/test_kernel_mm.py")
    assert src_rules == set(ALL_RULES)
    assert "TMO004" not in bench_rules  # benchmarks relax unit naming
    assert "TMO001" in bench_rules  # ... but not RNG discipline
    assert test_rules == {"TMO005", "TMO008", "TMO016"}


def test_rng_module_exempt_from_tmo001():
    # The one legitimate default_rng call lives in repro/sim/rng.py.
    found = lint_file(
        Path("src/repro/sim/rng.py"), select=["TMO001"]
    )
    assert found == []


def test_lint_paths_skips_fixture_directory():
    result = lint_paths([Path("tests")])
    assert result.clean
    touched = {v.path for v in result.violations}
    assert not any("lint_fixtures" in p for p in touched)


def test_repo_tree_is_clean():
    # The gate CI enforces: default scopes over the real tree.
    result = lint_paths(
        [Path("src"), Path("benchmarks"), Path("examples"), Path("tests")]
    )
    assert result.violations == []
    assert result.files_checked > 100
