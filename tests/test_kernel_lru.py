"""Unit tests for the LRU lists and the active/inactive pair."""

from repro.kernel.lru import LruList, LruSet
from repro.kernel.page import Page, PageKind


def page(pid: int, kind=PageKind.ANON) -> Page:
    return Page(page_id=pid, kind=kind, cgroup="g")


def test_empty_list():
    lru = LruList("l")
    assert len(lru) == 0
    assert lru.tail() is None
    assert lru.pop_tail() is None


def test_head_insert_order():
    lru = LruList("l")
    a, b = page(1), page(2)
    lru.add_to_head(a)
    lru.add_to_head(b)
    assert lru.tail() is a  # a is coldest


def test_readding_rotates_to_head():
    lru = LruList("l")
    a, b = page(1), page(2)
    lru.add_to_head(a)
    lru.add_to_head(b)
    lru.add_to_head(a)  # a becomes hottest again
    assert lru.tail() is b


def test_add_to_tail():
    lru = LruList("l")
    a, b = page(1), page(2)
    lru.add_to_head(a)
    lru.add_to_tail(b)
    assert lru.pop_tail() is b


def test_remove_and_discard():
    lru = LruList("l")
    a = page(1)
    lru.add_to_head(a)
    lru.remove(a)
    assert len(lru) == 0
    lru.discard(a)  # absent: no error


def test_iteration_cold_to_hot():
    lru = LruList("l")
    pages = [page(i) for i in range(3)]
    for p in pages:
        lru.add_to_head(p)
    assert [p.page_id for p in lru] == [0, 1, 2]


def test_new_pages_enter_inactive():
    lruset = LruSet(PageKind.FILE, "g")
    p = page(1, PageKind.FILE)
    lruset.insert_new(p)
    assert not p.active
    assert len(lruset.inactive) == 1
    assert len(lruset.active) == 0


def test_second_touch_promotes():
    lruset = LruSet(PageKind.FILE, "g")
    p = page(1, PageKind.FILE)
    lruset.insert_new(p)
    assert not lruset.touch(p)  # first touch: reference bit only
    assert p.referenced
    assert lruset.touch(p)      # second touch: promotion
    assert p.active
    assert len(lruset.active) == 1
    assert len(lruset.inactive) == 0


def test_touch_active_page_rotates():
    lruset = LruSet(PageKind.ANON, "g")
    a, b = page(1), page(2)
    lruset.insert_active(a)
    lruset.insert_active(b)
    lruset.touch(a)
    assert lruset.active.tail() is b


def test_insert_active_for_refaults():
    lruset = LruSet(PageKind.FILE, "g")
    p = page(1, PageKind.FILE)
    lruset.insert_active(p)
    assert p.active
    assert len(lruset.active) == 1


def test_remove_from_either_list():
    lruset = LruSet(PageKind.ANON, "g")
    a, b = page(1), page(2)
    lruset.insert_new(a)
    lruset.insert_active(b)
    lruset.remove(a)
    lruset.remove(b)
    assert len(lruset) == 0


def test_needs_deactivation_ratio():
    lruset = LruSet(PageKind.ANON, "g")
    for i in range(5):
        lruset.insert_active(page(i))
    assert lruset.needs_deactivation()  # 5 active vs 0 inactive
    lruset.insert_new(page(10))
    lruset.insert_new(page(11))
    lruset.insert_new(page(12))
    assert not lruset.needs_deactivation()  # 5 <= 2*3


def test_deactivate_one_moves_cold_active():
    lruset = LruSet(PageKind.ANON, "g")
    a, b = page(1), page(2)
    lruset.insert_active(a)
    lruset.insert_active(b)
    demoted = lruset.deactivate_one()
    assert demoted is a
    assert not a.active
    assert len(lruset.inactive) == 1


def test_deactivate_gives_referenced_page_second_chance():
    lruset = LruSet(PageKind.ANON, "g")
    a = page(1)
    lruset.insert_active(a)
    a.referenced = True
    assert lruset.deactivate_one() is None  # rotated, bit cleared
    assert not a.referenced
    assert a.active


def test_scan_tail_evicts_unreferenced():
    lruset = LruSet(PageKind.FILE, "g")
    a = page(1, PageKind.FILE)
    lruset.insert_new(a)
    victim, evictable = lruset.scan_tail()
    assert victim is a
    assert evictable
    assert len(lruset) == 0


def test_scan_tail_reactivates_referenced():
    lruset = LruSet(PageKind.FILE, "g")
    a = page(1, PageKind.FILE)
    lruset.insert_new(a)
    a.referenced = True
    victim, evictable = lruset.scan_tail()
    assert victim is a
    assert not evictable
    assert a.active  # second chance promoted it
    assert len(lruset.active) == 1


def test_scan_tail_empty():
    lruset = LruSet(PageKind.FILE, "g")
    victim, evictable = lruset.scan_tail()
    assert victim is None
    assert not evictable
