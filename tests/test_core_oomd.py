"""Unit tests for the PSI-driven userspace OOM killer."""

import pytest

from repro.core.oomd import Oomd, OomdConfig
from repro.psi.types import Resource, TaskFlags
from repro.workloads.access import HeatBands
from repro.workloads.apps import AppProfile
from repro.workloads.base import Workload

from tests.helpers import small_host

MB = 1 << 20
_GB = 1 << 30


def profile(npages=100) -> AppProfile:
    return AppProfile(
        name="victim",
        size_gb=npages * MB / _GB,
        anon_frac=0.6,
        bands=HeatBands(0.4, 0.1, 0.1),
        compress_ratio=3.0,
        nthreads=2,
        cpu_cores=1.0,
    )


def test_healthy_workload_never_killed():
    host = small_host(ram_gb=1.0)
    host.add_workload(Workload, profile=profile(), name="app")
    oomd = host.add_controller(Oomd(OomdConfig()))
    host.run(120.0)
    assert oomd.kills == []
    assert "app" in host._hosted


class _StubHosted:
    def __init__(self, name):
        self.cgroup_name = name


class _StubHost:
    """A minimal host exposing what Oomd consumes, with PSI driven
    directly (the real scheduler overwrites pinned task flags)."""

    def __init__(self):
        from repro.psi.tracker import PsiSystem

        self.psi = PsiSystem(ncpu=4)
        self.psi.add_group("app")
        self.task = self.psi.add_task("t", "app")
        self._hosted = {"app": _StubHosted("app")}
        self.killed = []

    def hosted(self):
        return list(self._hosted.values())

    def kill_workload(self, name):
        self._hosted.pop(name)
        self.killed.append(name)
        return 1


def test_sustained_full_pressure_triggers_kill():
    host = _StubHost()
    oomd = Oomd(OomdConfig(full_threshold=0.10, sustain_s=5.0))
    # The sole task is permanently memory-stalled: full pressure 100%.
    host.task.set_flags(TaskFlags.MEMSTALL, 0.0)
    now = 0.0
    while now < 60.0 and not oomd.kills:
        now += 1.0
        oomd.poll(host, now)
    assert len(oomd.kills) == 1
    kill_time, victim = oomd.kills[0]
    assert victim == "app"
    # Fired only after the sustain window, not instantly.
    assert kill_time >= 5.0
    assert host.killed == ["app"]


def test_transient_spike_does_not_kill():
    host = _StubHost()
    oomd = Oomd(OomdConfig(full_threshold=0.10, sustain_s=30.0))
    # 5 seconds of full stall, then recovery — under the sustain window.
    host.task.set_flags(TaskFlags.MEMSTALL, 0.0)
    for t in range(1, 6):
        oomd.poll(host, float(t))
    host.task.set_flags(TaskFlags.RUNNING, 5.0)
    for t in range(6, 120):
        oomd.poll(host, float(t))
    assert oomd.kills == []


def test_explicit_cgroup_scope():
    host = _StubHost()
    # Watch only a cgroup that is not the stalled one.
    oomd = Oomd(OomdConfig(full_threshold=0.10, sustain_s=3.0,
                           cgroups=("other",)))
    host.task.set_flags(TaskFlags.MEMSTALL, 0.0)
    for t in range(1, 60):
        oomd.poll(host, float(t))
    assert oomd.kills == []
    assert "app" in host._hosted


def test_kill_workload_host_mechanics():
    host = small_host(ram_gb=1.0)
    host.add_workload(Workload, profile=profile(), name="app")
    host.run(10.0)
    released = host.kill_workload("app")
    assert released > 0
    assert "app" not in host._hosted
    # PSI settled: the group's stall counters stop growing.
    before = host.psi.group("app").total(Resource.MEMORY, "some")
    host.run(10.0)
    after = host.psi.group("app").total(Resource.MEMORY, "some")
    assert after == before
