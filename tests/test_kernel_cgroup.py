"""Unit tests for cgroup accounting and hierarchy."""

import pytest

from repro.kernel.cgroup import Cgroup
from repro.kernel.page import PageKind

PAGE = 4096


def test_charge_uncharge_roundtrip():
    cg = Cgroup("g", page_size_bytes=PAGE)
    cg.charge(PageKind.ANON, PAGE)
    cg.charge(PageKind.FILE, 2 * PAGE)
    assert cg.anon_bytes == PAGE
    assert cg.file_bytes == 2 * PAGE
    assert cg.resident_bytes == 3 * PAGE
    assert cg.resident_pages == 3
    cg.uncharge(PageKind.FILE, PAGE)
    assert cg.file_bytes == PAGE


def test_negative_accounting_detected():
    cg = Cgroup("g", page_size_bytes=PAGE)
    with pytest.raises(RuntimeError):
        cg.uncharge(PageKind.ANON, PAGE)


def test_rejects_bad_page_size():
    with pytest.raises(ValueError):
        Cgroup("g", page_size_bytes=0)


def test_hierarchical_current_bytes():
    root = Cgroup("root", page_size_bytes=PAGE)
    a = Cgroup("a", page_size_bytes=PAGE, parent=root)
    b = Cgroup("b", page_size_bytes=PAGE, parent=root)
    leaf = Cgroup("leaf", page_size_bytes=PAGE, parent=a)
    a.charge(PageKind.ANON, PAGE)
    b.charge(PageKind.FILE, PAGE)
    leaf.charge(PageKind.ANON, 2 * PAGE)
    assert root.current_bytes() == 4 * PAGE
    assert a.current_bytes() == 3 * PAGE
    assert b.current_bytes() == PAGE


def test_duplicate_child_name_rejected():
    root = Cgroup("root", page_size_bytes=PAGE)
    Cgroup("a", page_size_bytes=PAGE, parent=root)
    with pytest.raises(ValueError):
        Cgroup("a", page_size_bytes=PAGE, parent=root)


def test_walk_and_leaves():
    root = Cgroup("root", page_size_bytes=PAGE)
    a = Cgroup("a", page_size_bytes=PAGE, parent=root)
    leaf1 = Cgroup("leaf1", page_size_bytes=PAGE, parent=a)
    leaf2 = Cgroup("leaf2", page_size_bytes=PAGE, parent=root)
    names = [cg.name for cg in root.walk()]
    assert set(names) == {"root", "a", "leaf1", "leaf2"}
    assert {cg.name for cg in root.leaves()} == {"leaf1", "leaf2"}


def test_ancestors_chain():
    root = Cgroup("root", page_size_bytes=PAGE)
    a = Cgroup("a", page_size_bytes=PAGE, parent=root)
    leaf = Cgroup("leaf", page_size_bytes=PAGE, parent=a)
    assert [cg.name for cg in leaf.ancestors()] == ["a", "root"]


def test_limit_headroom_unlimited():
    cg = Cgroup("g", page_size_bytes=PAGE)
    assert cg.limit_headroom() is None


def test_limit_headroom_takes_tightest_ancestor():
    root = Cgroup("root", page_size_bytes=PAGE)
    a = Cgroup("a", page_size_bytes=PAGE, parent=root)
    leaf = Cgroup("leaf", page_size_bytes=PAGE, parent=a)
    root.memory_max = 10 * PAGE
    a.memory_max = 4 * PAGE
    leaf.charge(PageKind.ANON, 2 * PAGE)
    # a: 4-2 = 2 pages headroom; root: 10-2 = 8. Tightest is a.
    assert leaf.limit_headroom() == 2 * PAGE


def test_offloaded_bytes():
    cg = Cgroup("g", page_size_bytes=PAGE)
    cg.swap_bytes = 3 * PAGE
    cg.zswap_bytes = PAGE
    assert cg.offloaded_bytes() == 4 * PAGE


def test_update_rates_smooths_vmstat():
    cg = Cgroup("g", page_size_bytes=PAGE)
    cg.vmstat.workingset_refault = 30
    cg.update_rates(dt=30.0)  # full window: rate jumps to 1/s
    assert cg.refault_rate.rate == pytest.approx(1.0)
    cg.update_rates(dt=30.0)  # no new events: rate decays to 0
    assert cg.refault_rate.rate == pytest.approx(0.0)
