"""Unit tests for vmstat counters and rate estimation."""

import pytest

from repro.kernel.vmstat import RateEstimator, VmStat


def test_snapshot_is_independent_copy():
    stat = VmStat()
    stat.pswpin = 5
    snap = stat.snapshot()
    stat.pswpin = 10
    assert snap.pswpin == 5


def test_delta():
    stat = VmStat()
    stat.pgscan = 100
    earlier = stat.snapshot()
    stat.pgscan = 150
    stat.pswpout = 7
    delta = stat.delta(earlier)
    assert delta.pgscan == 50
    assert delta.pswpout == 7
    assert delta.pgmajfault == 0


def test_add_accumulates_for_fleet_aggregation():
    a = VmStat(pswpin=1, pgscan=2)
    b = VmStat(pswpin=10, pgsteal=3)
    a.add(b)
    assert a.pswpin == 11
    assert a.pgscan == 2
    assert a.pgsteal == 3


def test_rate_estimator_steady_rate():
    est = RateEstimator(window_s=10.0)
    count = 0
    for _ in range(50):
        count += 20  # 20 events per 2s = 10/s
        est.update(count, dt=2.0)
    assert est.rate == pytest.approx(10.0, rel=1e-3)


def test_rate_estimator_decays():
    est = RateEstimator(window_s=10.0)
    est.update(100, dt=10.0)
    assert est.rate == pytest.approx(10.0)
    for _ in range(20):
        est.update(100, dt=10.0)
    assert est.rate == pytest.approx(0.0, abs=1e-6)


def test_rate_estimator_ignores_zero_dt():
    est = RateEstimator()
    est.update(100, dt=0.0)
    assert est.rate == 0.0


def test_rate_estimator_counter_regression_clamped():
    est = RateEstimator(window_s=1.0)
    est.update(100, dt=1.0)
    est.update(50, dt=1.0)  # counter went backwards (restart)
    assert est.rate >= 0.0
