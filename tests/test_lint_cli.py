"""Tests of the tmo-lint command line: exit codes, formats, baseline."""

import json
from pathlib import Path

import pytest

from repro.lint.baseline import load_baseline, write_baseline
from repro.lint.cli import main
from repro.lint import lint_file

FIXTURES = Path(__file__).parent / "lint_fixtures"

BAD = str(FIXTURES / "tmo001_bad.py")
GOOD = str(FIXTURES / "tmo001_good.py")


def test_exit_zero_on_clean_file(capsys):
    assert main(["--no-baseline", "--select", "TMO001", GOOD]) == 0
    out = capsys.readouterr().out
    assert "0 violations" in out


def test_exit_one_on_violations(capsys):
    assert main(["--no-baseline", "--select", "TMO001", BAD]) == 1
    out = capsys.readouterr().out
    assert "TMO001" in out
    assert f"{BAD}:9:" in out  # path:line:col prefix


def test_exit_two_on_unknown_rule():
    with pytest.raises(SystemExit) as excinfo:
        main(["--select", "TMO999", BAD])
    assert excinfo.value.code == 2


def test_exit_two_on_missing_paths():
    with pytest.raises(SystemExit) as excinfo:
        main(["--no-baseline", "no/such/dir"])
    assert excinfo.value.code == 2


def test_json_format(capsys):
    assert main(
        ["--no-baseline", "--select", "TMO001", "--format", "json", BAD]
    ) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_checked"] == 1
    rules = {v["rule"] for v in payload["violations"]}
    assert rules == {"TMO001"}
    assert all(
        set(v) >= {"path", "line", "col", "rule", "message"}
        for v in payload["violations"]
    )


def test_disable_switches_rule_off(capsys):
    assert main(
        ["--no-baseline", "--select", "TMO001", "--disable", "TMO001", BAD]
    ) == 0
    capsys.readouterr()


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("TMO001", "TMO008", "TMO000"):
        assert rule_id in out


# ----------------------------------------------------------------------
# baseline


def test_write_then_apply_baseline(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    assert main(
        ["--select", "TMO001", "--baseline", str(baseline),
         "--write-baseline", BAD]
    ) == 0
    capsys.readouterr()
    assert baseline.exists()

    # With the baseline applied the same findings are suppressed.
    assert main(
        ["--select", "TMO001", "--baseline", str(baseline), BAD]
    ) == 0
    out = capsys.readouterr().out
    assert "0 violations" in out

    # --no-baseline brings them back.
    assert main(
        ["--select", "TMO001", "--baseline", str(baseline),
         "--no-baseline", BAD]
    ) == 1
    capsys.readouterr()


def test_baseline_reports_stale_entries(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    violations = lint_file(Path(BAD), select=["TMO001"])
    # Poison the baseline with an entry no current violation matches.
    count = write_baseline(baseline, violations)
    data = json.loads(baseline.read_text())
    data["entries"].append(
        {"path": "gone.py", "rule": "TMO001", "text": "x = 1", "count": 1}
    )
    baseline.write_text(json.dumps(data))
    assert count == len(violations)

    assert main(
        ["--select", "TMO001", "--baseline", str(baseline), BAD]
    ) == 0
    out = capsys.readouterr().out
    assert "stale" in out


def test_corrupt_baseline_is_a_usage_error(tmp_path):
    baseline = tmp_path / "baseline.json"
    baseline.write_text("{not json")
    with pytest.raises(SystemExit) as excinfo:
        main(["--baseline", str(baseline), GOOD])
    assert excinfo.value.code == 2


def test_baseline_roundtrip_preserves_counts(tmp_path):
    baseline = tmp_path / "baseline.json"
    violations = lint_file(Path(BAD), select=["TMO001"])
    write_baseline(baseline, violations)
    entries = load_baseline(baseline)
    assert sum(entries.values()) == len(violations)
