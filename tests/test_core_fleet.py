"""Unit tests for the fleet harness and savings accounting."""

import pytest

from repro.core.fleet import Fleet, HostPlan, cgroup_memory_savings
from repro.core.senpai import SenpaiConfig
from repro.sim.host import HostConfig

from tests.helpers import make_mm

MB = 1 << 20
PAGE = 256 * 1024


# ----------------------------------------------------------------------
# savings accounting


def test_untouched_cgroup_has_zero_savings():
    mm = make_mm()
    mm.create_cgroup("app")
    mm.alloc_anon("app", 10, now=0.0)
    stats = cgroup_memory_savings(mm, "app")
    assert stats["saved_bytes"] == 0.0
    assert stats["savings_frac"] == 0.0


def test_zswap_savings_net_of_pool():
    mm = make_mm(backend="zswap")
    mm.create_cgroup("app", compressibility=4.0)
    mm.alloc_anon("app", 20, now=0.0)
    mm.memory_reclaim("app", 10 * PAGE, now=1.0)
    stats = cgroup_memory_savings(mm, "app")
    offloaded = stats["offloaded_bytes"]
    assert offloaded > 0
    # Pool overhead ~ offloaded / 4 / 0.9 packing.
    assert 0 < stats["pool_overhead_bytes"] < offloaded / 2
    assert stats["saved_bytes"] == pytest.approx(
        offloaded - stats["pool_overhead_bytes"]
    )


def test_ssd_savings_have_no_pool_overhead():
    mm = make_mm(backend="ssd")
    mm.create_cgroup("app")
    mm.alloc_anon("app", 20, now=0.0)
    mm.memory_reclaim("app", 5 * PAGE, now=1.0)
    stats = cgroup_memory_savings(mm, "app")
    assert stats["pool_overhead_bytes"] == 0.0
    assert stats["saved_bytes"] == stats["offloaded_bytes"] > 0


def test_file_savings_counted_via_shadows():
    mm = make_mm(backend=None)
    mm.create_cgroup("app")
    mm.register_file("app", 20, now=0.0, resident=True)
    mm.memory_reclaim("app", 5 * PAGE, now=1.0)
    stats = cgroup_memory_savings(mm, "app")
    assert stats["saved_file_bytes"] == 5 * PAGE
    assert stats["savings_frac"] == pytest.approx(0.25)


def test_refault_reduces_file_savings():
    mm = make_mm(backend=None)
    mm.create_cgroup("app")
    pages, _ = mm.register_file("app", 20, now=0.0, resident=True)
    mm.memory_reclaim("app", 5 * PAGE, now=1.0)
    evicted = [p for p in pages if not p.resident]
    mm.touch(evicted[0], now=2.0)  # refault: saving undone
    stats = cgroup_memory_savings(mm, "app")
    assert stats["saved_file_bytes"] == 4 * PAGE


# ----------------------------------------------------------------------
# fleet harness


def small_fleet():
    return Fleet(
        base_config=HostConfig(
            ram_gb=1.0, page_size_bytes=1 * MB, ncpu=8, backend="zswap",
        ),
        seed=3,
    )


def test_fleet_runs_planned_hosts():
    fleet = small_fleet()
    plans = [HostPlan(app="Feed", count=2, size_scale=0.01)]
    result = fleet.run(plans, duration_s=300.0)
    assert len(result.reports) == 2
    assert result.apps() == ["Feed"]
    for report in result.reports:
        assert report.backend == "zswap"
        assert report.app_baseline_bytes > 0


def test_fleet_without_tax():
    fleet = small_fleet()
    plans = [HostPlan(app="Feed", count=1, size_scale=0.01,
                      include_tax=False)]
    result = fleet.run(plans, duration_s=120.0)
    assert result.reports[0].tax_saved_bytes == 0.0


def test_fleet_backend_override():
    fleet = small_fleet()
    plans = [HostPlan(app="Feed", count=1, size_scale=0.01,
                      backend="ssd", include_tax=False)]
    result = fleet.run(plans, duration_s=60.0)
    assert result.reports[0].backend == "ssd"


def test_fleet_savings_aggregation():
    fleet = small_fleet()
    plans = [
        HostPlan(app="Feed", count=1, size_scale=0.01, include_tax=False),
        HostPlan(app="Cache B", count=1, size_scale=0.01,
                 include_tax=False),
    ]
    result = fleet.run(plans, duration_s=600.0)
    assert set(result.apps()) == {"Feed", "Cache B"}
    assert 0.0 <= result.app_savings("Feed") <= 1.0
    assert result.total_savings_of_ram() >= 0.0


def test_fleet_determinism():
    plans = [HostPlan(app="Feed", count=1, size_scale=0.01,
                      include_tax=False)]
    r1 = small_fleet().run(plans, duration_s=300.0)
    r2 = small_fleet().run(plans, duration_s=300.0)
    assert r1.reports[0].app_saved_bytes == r2.reports[0].app_saved_bytes


def test_fleet_isolates_a_failed_host():
    fleet = small_fleet()
    plans = [
        HostPlan(app="Feed", count=2, size_scale=0.01,
                 include_tax=False),
        # An invalid backend makes this host's build raise; the
        # rollout must record it and carry on.
        HostPlan(app="Cache B", count=1, size_scale=0.01,
                 include_tax=False, backend="bogus"),
    ]
    result = fleet.run(plans, duration_s=120.0)
    assert len(result.reports) == 2
    assert result.apps() == ["Feed"]
    assert result.partial is True
    assert len(result.failed_hosts) == 1
    failed = result.failed_hosts[0]
    assert failed.app == "Cache B"
    assert failed.host_index == 0
    assert "bogus" in failed.error


def test_fleet_without_failures_is_not_partial():
    fleet = small_fleet()
    plans = [HostPlan(app="Feed", count=1, size_scale=0.01,
                      include_tax=False)]
    result = fleet.run(plans, duration_s=60.0)
    assert result.partial is False
    assert result.failed_hosts == []
