"""Unit tests for the virtual clock."""

import pytest

from repro.sim.clock import Clock


def test_starts_at_zero():
    assert Clock().now == 0.0


def test_starts_at_given_time():
    assert Clock(5.0).now == 5.0


def test_rejects_negative_start():
    with pytest.raises(ValueError):
        Clock(-1.0)


def test_advance_accumulates():
    clock = Clock()
    clock.advance(1.5)
    clock.advance(0.5)
    assert clock.now == pytest.approx(2.0)


def test_advance_zero_is_allowed():
    clock = Clock(3.0)
    clock.advance(0.0)
    assert clock.now == 3.0


def test_advance_rejects_negative():
    clock = Clock()
    with pytest.raises(ValueError):
        clock.advance(-0.1)


def test_advance_to_moves_to_absolute_time():
    clock = Clock()
    clock.advance_to(10.0)
    assert clock.now == 10.0


def test_advance_to_rejects_past():
    clock = Clock(5.0)
    with pytest.raises(ValueError):
        clock.advance_to(4.0)


def test_repr_mentions_time():
    assert "1.5" in repr(Clock(1.5))
