"""Unit tests for host assembly and the tick loop."""

import pytest

from repro.backends.ssd import SsdSwapBackend
from repro.backends.zswap import ZswapBackend
from repro.psi.types import Resource
from repro.sim.host import Host, HostConfig
from repro.workloads.access import HeatBands
from repro.workloads.apps import AppProfile
from repro.workloads.base import Workload

from tests.helpers import small_host

MB = 1 << 20
_GB = 1 << 30


def profile(npages=200, **overrides) -> AppProfile:
    defaults = dict(
        name="app",
        size_gb=npages * MB / _GB,
        anon_frac=0.6,
        bands=HeatBands(0.4, 0.1, 0.1),
        compress_ratio=3.0,
        nthreads=3,
        cpu_cores=2.0,
    )
    defaults.update(overrides)
    return AppProfile(**defaults)


def test_backend_selection():
    assert isinstance(small_host(backend="zswap").swap_backend, ZswapBackend)
    assert isinstance(small_host(backend="ssd").swap_backend, SsdSwapBackend)
    assert small_host(backend=None).swap_backend is None
    with pytest.raises(ValueError):
        Host(HostConfig(backend="tape"))


def test_reclaim_policy_selection():
    assert small_host().mm.reclaimer.policy.name == "tmo"
    assert small_host(reclaim_policy="legacy").mm.reclaimer.policy.name == (
        "legacy"
    )
    with pytest.raises(ValueError):
        Host(HostConfig(reclaim_policy="magic"))


def test_ssd_swap_shares_device_with_fs():
    host = small_host(backend="ssd")
    assert host.swap_backend.device is host.fs.device


def test_add_workload_builds_container():
    host = small_host()
    workload = host.add_workload(Workload, profile=profile(), name="app")
    assert workload.started
    assert host.mm.cgroup("app").resident_bytes > 0
    assert host.psi.group("app") is not None
    assert len(host._hosted["app"].psi_tasks) == 3


def test_workload_accessor():
    host = small_host()
    w = host.add_workload(Workload, profile=profile(), name="app")
    assert host.workload("app") is w
    assert len(host.hosted()) == 1


def test_step_advances_clock():
    host = small_host()
    host.add_workload(Workload, profile=profile(), name="app")
    host.step()
    assert host.clock.now == pytest.approx(host.config.tick_s)


def test_run_duration():
    host = small_host()
    host.add_workload(Workload, profile=profile(), name="app")
    host.run(10.0)
    assert host.clock.now == pytest.approx(10.0)


def test_run_tick_totals_are_exact_over_hours():
    """Regression: :meth:`Host.run` counts an integer number of ticks
    per call, so chunked multi-hour runs with a non-representable
    ``tick_s`` land on exact totals — the old float-epsilon loop
    (``while now < end``) could gain or lose a tick per call."""
    host = small_host(tick_s=0.1)
    for _ in range(24):
        host.run(300.0)  # two hours, fed in 5-minute chunks
    assert host.tick_count == 72_000
    assert host.clock.now == pytest.approx(7200.0)


def test_metrics_recorded_each_tick():
    host = small_host()
    host.add_workload(Workload, profile=profile(), name="app")
    host.run(5.0)
    for name in (
        "host/free_bytes",
        "app/resident_bytes",
        "app/promotion_rate",
        "app/psi_mem_some_avg10",
        "fs/read_rate",
    ):
        assert name in host.metrics
        assert len(host.metrics.series(name)) == 5


def test_cpu_oversubscription_creates_cpu_pressure():
    host = small_host(ncpu=2)
    # Demand 8 cores on a 2-core host.
    host.add_workload(
        Workload, profile=profile(cpu_cores=8.0, nthreads=8), name="app"
    )
    host.run(30.0)
    cpu_some = host.psi.group("app").total(Resource.CPU, "some")
    assert cpu_some > 0.0


def test_stalls_reach_psi_groups():
    host = small_host(backend="ssd")
    host.add_workload(Workload, profile=profile(), name="app")
    # Kick out a big chunk so faults occur.
    host.mm.memory_reclaim("app", 100 * MB, now=0.0)
    host.run(30.0)
    mem_some = host.psi.group("app").total(Resource.MEMORY, "some")
    io_some = host.psi.group("app").total(Resource.IO, "some")
    assert mem_some > 0.0
    assert io_some > 0.0
    # System-wide domain saw it too.
    assert host.psi.group("system").total(Resource.MEMORY, "some") > 0.0


def test_determinism_same_seed():
    def run_once():
        host = small_host(seed=99)
        host.add_workload(Workload, profile=profile(), name="app")
        host.run(60.0)
        cg = host.mm.cgroup("app")
        return (
            cg.resident_bytes,
            cg.vmstat.pgpgin_file,
            host.psi.group("app").total(Resource.IO, "some"),
        )

    assert run_once() == run_once()


def test_different_seeds_differ():
    def run_once(seed):
        host = small_host(seed=seed)
        host.add_workload(Workload, profile=profile(), name="app")
        host.run(60.0)
        return host.mm.cgroup("app").vmstat.pgpgin_file

    assert run_once(1) != run_once(2)


def test_two_workloads_coexist():
    host = small_host()
    host.add_workload(Workload, profile=profile(100), name="a")
    host.add_workload(Workload, profile=profile(100), name="b")
    host.run(10.0)
    assert host.mm.cgroup("a").resident_bytes > 0
    assert host.mm.cgroup("b").resident_bytes > 0


def test_default_name_slug():
    host = small_host()
    host.add_workload(Workload, profile=profile(name="Ads A", npages=50))
    assert host.workload("ads-a") is not None
