"""The fleet resilience runtime: deadlines, spooling, retry, quarantine.

Unit-level coverage for :mod:`repro.core.fleetres`; the end-to-end
recovery digest-equality gate lives in tests/test_fleet_parallel.py.
"""

import dataclasses
import os

import pytest

from repro.core.fleet import FailedHost, build_fleet_host, HostPlan
from repro.core.fleetres import (
    FleetResilienceConfig,
    HostUnit,
    SimulatedWorkerCrash,
    SimulatedWorkerHang,
    WorkerFailure,
    _fire,
    _ticks_for,
    load_spooled_snapshot,
    run_host_attempt,
    spool_snapshot,
)
from repro.faults.plan import FaultEvent, FaultPlan
from repro.sim.host import HostConfig
from repro.sim.rng import derive_seed

MB = 1 << 20

BASE = HostConfig(ram_gb=0.25, page_size_bytes=1 * MB, ncpu=4)
PLAN = HostPlan(app="Feed", count=1, size_scale=0.003)


def make_unit(tmp_path, **overrides):
    fields = dict(
        base_config=BASE,
        fleet_seed=11,
        plan=PLAN,
        index=0,
        slot=0,
        duration_s=30.0,
        spool_path=str(tmp_path / "host-0000.snapshot"),
        checkpoint_every_s=10.0,
    )
    fields.update(overrides)
    return HostUnit(**fields)


# ----------------------------------------------------------------------
# config


def test_config_validation():
    with pytest.raises(ValueError):
        FleetResilienceConfig(max_attempts=0)
    with pytest.raises(ValueError):
        FleetResilienceConfig(retry_backoff_s=-1.0)
    with pytest.raises(ValueError):
        FleetResilienceConfig(deadline_min_s=0.0)
    with pytest.raises(ValueError):
        FleetResilienceConfig(checkpoint_every_s=0.0)


def test_deadline_scales_with_duration():
    config = FleetResilienceConfig(
        deadline_min_s=60.0, deadline_per_sim_s=0.5
    )
    assert config.deadline_s(10.0) == 60.0  # floor wins
    assert config.deadline_s(1000.0) == 500.0  # per-sim budget wins


def test_backoff_doubles_and_caps():
    config = FleetResilienceConfig(
        retry_backoff_s=0.1, retry_backoff_max_s=0.35
    )
    assert config.backoff_s(0) == 0.0
    assert config.backoff_s(1) == pytest.approx(0.1)
    assert config.backoff_s(2) == pytest.approx(0.2)
    assert config.backoff_s(3) == pytest.approx(0.35)  # capped
    assert config.backoff_s(10) == pytest.approx(0.35)


def test_ticks_for_matches_host_run():
    # Same formula as Host.run: exact divisions get no extra tick,
    # genuine remainders get one.
    assert _ticks_for(30.0, 1.0) == 30
    assert _ticks_for(30.5, 1.0) == 31
    assert _ticks_for(0.3, 0.1) == 3  # division noise is not a tick


def test_host_seed_is_the_fleet_derivation():
    unit = make_unit(__import__("pathlib").Path("/tmp"))
    assert unit.host_seed == derive_seed(11, "host:Feed:0")


# ----------------------------------------------------------------------
# spool


def test_spool_roundtrip(tmp_path):
    path = str(tmp_path / "snap.json")
    host = build_fleet_host(BASE, 11, PLAN, 0)
    host.run(10.0)
    spool_snapshot(host, path)
    restored = load_spooled_snapshot(path)
    assert restored is not None
    assert restored.tick_count == host.tick_count
    # No torn temp file is left behind.
    assert os.listdir(tmp_path) == ["snap.json"]


def test_spool_missing_and_corrupt_degrade_to_none(tmp_path):
    assert load_spooled_snapshot(str(tmp_path / "absent.json")) is None
    bad = tmp_path / "bad.json"
    bad.write_text("{not a snapshot")
    assert load_spooled_snapshot(str(bad)) is None
    host = build_fleet_host(BASE, 11, PLAN, 0)
    host.run(5.0)
    good = tmp_path / "good.json"
    spool_snapshot(host, str(good))
    # A flipped byte in the payload fails the digest check -> None.
    text = good.read_text()
    good.write_text(text.replace('"payload"', '"PAYLOAD"', 1))
    assert load_spooled_snapshot(str(good)) is None


# ----------------------------------------------------------------------
# fault firing (serial, cooperative)


def test_fire_serial_crash_and_hang_raise(tmp_path):
    unit = make_unit(tmp_path)
    crash = FaultEvent(kind="worker_crash", target="host:0",
                       start_s=5.0, duration_s=0.0)
    with pytest.raises(SimulatedWorkerCrash):
        _fire(crash, unit, in_process=True)
    hang = FaultEvent(kind="worker_hang", target="host:0",
                      start_s=5.0, duration_s=0.0)
    with pytest.raises(SimulatedWorkerHang):
        _fire(hang, unit, in_process=True)


def test_fire_rejects_non_worker_kinds(tmp_path):
    unit = make_unit(tmp_path)
    restart = FaultEvent(kind="restart", target="app",
                         start_s=5.0, duration_s=0.0)
    with pytest.raises(ValueError):
        _fire(restart, unit, in_process=True)


def test_worker_slow_stalls_but_completes(tmp_path):
    slow = FaultEvent(kind="worker_slow", target="host:0",
                      start_s=5.0, duration_s=10.0, severity=0.5)
    unit = make_unit(tmp_path, faults=(slow,), slow_stall_s=0.01)
    outcome = run_host_attempt(unit, in_process=True)
    assert not isinstance(outcome, WorkerFailure)
    assert outcome.attempts == 1 and outcome.recovered is False


# ----------------------------------------------------------------------
# attempts


def test_attempt_crash_then_restore_is_digest_identical(tmp_path):
    control = run_host_attempt(
        make_unit(tmp_path, spool_path=str(tmp_path / "c.json")),
        in_process=True,
    )
    crash = FaultEvent(kind="worker_crash", target="host:0",
                       start_s=15.0, duration_s=0.0)
    unit = make_unit(tmp_path, faults=(crash,))
    first = run_host_attempt(unit, in_process=True)
    assert isinstance(first, WorkerFailure)
    assert first.phase == "run" and first.hung is False
    # The spool from t=10 survives the crash at t=15.
    retry = run_host_attempt(
        dataclasses.replace(unit, attempt=2), in_process=True,
    )
    assert not isinstance(retry, WorkerFailure)
    assert retry.recovered is True and retry.attempts == 2
    assert retry.metrics_digest == control.metrics_digest


def test_hang_failure_is_marked_hung(tmp_path):
    hang = FaultEvent(kind="worker_hang", target="host:0",
                      start_s=3.0, duration_s=0.0)
    unit = make_unit(tmp_path, faults=(hang,))
    outcome = run_host_attempt(unit, in_process=True)
    assert isinstance(outcome, WorkerFailure)
    assert outcome.hung is True


def test_build_failure_reports_build_phase(tmp_path):
    bogus = HostPlan(app="Feed", count=1, backend="bogus")
    unit = make_unit(tmp_path, plan=bogus)
    outcome = run_host_attempt(unit, in_process=True)
    assert isinstance(outcome, WorkerFailure)
    assert outcome.phase == "build"
    assert "bogus" in outcome.error
    assert outcome.traceback_tail != ""


def test_faults_only_fire_on_first_attempt(tmp_path):
    crash = FaultEvent(kind="worker_crash", target="host:0",
                       start_s=5.0, duration_s=0.0)
    unit = make_unit(tmp_path, faults=(crash,), attempt=2)
    outcome = run_host_attempt(unit, in_process=True)
    assert not isinstance(outcome, WorkerFailure)


# ----------------------------------------------------------------------
# plan integration


def test_worker_events_filters_by_slot():
    plan = FaultPlan.generate(
        2, 60.0, extra_events=0, worker_faults=3, fleet_hosts=3
    )
    for slot in range(3):
        for ev in plan.worker_events(slot):
            assert ev.target == f"host:{slot}"
            assert ev.kind.startswith("worker_")
    total = sum(len(plan.worker_events(s)) for s in range(3))
    assert total == 3


def test_failed_host_repro_hint_names_everything():
    failed = FailedHost(
        app="Feed", host_index=2, error="RuntimeError('x')",
        seed=123, phase="run", attempts=3,
        traceback_tail="tb", hung=True,
    )
    hint = failed.repro_hint()
    assert "Feed#2" in hint
    assert "123" in hint
    assert "run" in hint
    assert "3 attempt" in hint
    assert "hang" in hint
