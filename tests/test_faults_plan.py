"""FaultPlan: seed-derived schedules must be valid and bit-reproducible."""

import pytest

from repro.faults.plan import (
    CONTROLLER_KINDS,
    DEVICE_KINDS,
    FAULT_KINDS,
    GENERATED_KINDS,
    INSTANT_KINDS,
    RECOVERY_TAIL_FRAC,
    FaultEvent,
    FaultPlan,
)


def test_same_seed_same_plan():
    a = FaultPlan.generate(7, 900.0)
    b = FaultPlan.generate(7, 900.0)
    assert a == b
    assert a.digest_text() == b.digest_text()


def test_different_seed_different_plan():
    a = FaultPlan.generate(7, 900.0)
    b = FaultPlan.generate(8, 900.0)
    assert a.digest_text() != b.digest_text()


def test_plan_always_includes_breaker_storm():
    for seed in range(20):
        plan = FaultPlan.generate(seed, 900.0)
        storms = [
            ev for ev in plan.events
            if ev.kind == "io_error" and ev.target == "swap"
            and ev.severity >= 0.9
        ]
        assert storms, f"seed {seed} has no guaranteed swap storm"
        assert any(ev.duration_s >= 45.0 for ev in storms)


def test_every_window_ends_before_recovery_tail():
    for seed in range(20):
        plan = FaultPlan.generate(seed, 900.0)
        tail = RECOVERY_TAIL_FRAC * plan.duration_s
        for ev in plan.events:
            if not ev.instant:
                assert ev.end_s <= tail + 1e-9


def test_events_sorted_by_start():
    plan = FaultPlan.generate(3, 900.0, extra_events=20)
    starts = [ev.start_s for ev in plan.events]
    assert starts == sorted(starts)


def test_instant_kinds_have_zero_duration():
    plan = FaultPlan.generate(5, 900.0, extra_events=40)
    for ev in plan.events:
        if ev.kind in INSTANT_KINDS:
            assert ev.duration_s == 0.0
            assert ev.instant
            assert not ev.active(ev.start_s)


def test_device_kinds_target_a_device():
    plan = FaultPlan.generate(11, 900.0, extra_events=40)
    for ev in plan.events:
        if ev.kind in DEVICE_KINDS:
            assert ev.target in ("swap", "fs")


def test_event_validation():
    with pytest.raises(ValueError):
        FaultEvent(kind="nonsense", target="swap", start_s=0.0,
                   duration_s=1.0)
    with pytest.raises(ValueError):
        FaultEvent(kind="io_error", target="swap", start_s=-1.0,
                   duration_s=1.0)
    with pytest.raises(ValueError):
        FaultEvent(kind="io_error", target="swap", start_s=0.0,
                   duration_s=1.0, severity=1.5)


def test_generate_validation():
    with pytest.raises(ValueError):
        FaultPlan.generate(1, 0.0)
    with pytest.raises(ValueError):
        FaultPlan.generate(1, 900.0, cgroups=())


def test_active_window_semantics():
    ev = FaultEvent(kind="outage", target="swap", start_s=10.0,
                    duration_s=5.0)
    assert not ev.active(9.9)
    assert ev.active(10.0)
    assert ev.active(14.9)
    assert not ev.active(15.0)


def test_all_kinds_are_generable():
    """With enough extra events, every fault kind eventually appears."""
    seen = set()
    for seed in range(30):
        plan = FaultPlan.generate(seed, 900.0, extra_events=10,
                                  controller_faults=2)
        seen.update(ev.kind for ev in plan.events)
    assert seen == set(FAULT_KINDS)


def test_controller_faults_extend_without_rewriting_the_base_plan():
    """The controller draws come after every base draw, so a seed's
    base schedule is byte-identical with and without them."""
    for seed in (1, 2, 3):
        base = FaultPlan.generate(seed, 900.0)
        extended = FaultPlan.generate(seed, 900.0, controller_faults=3)
        controller_events = [
            ev for ev in extended.events if ev.target == "controller"
        ]
        assert len(controller_events) == 3
        assert tuple(
            ev for ev in extended.events if ev.target != "controller"
        ) == base.events
        for ev in controller_events:
            assert ev.kind in CONTROLLER_KINDS
            assert ev.severity == 1.0
            if ev.kind == "controller_crash":
                assert ev.instant and ev.duration_s == 0.0
            else:
                assert not ev.instant and ev.duration_s > 0.0


def test_generated_kinds_split_is_consistent():
    assert set(GENERATED_KINDS) | set(CONTROLLER_KINDS) == set(FAULT_KINDS)
    assert not set(GENERATED_KINDS) & set(CONTROLLER_KINDS)
    assert "controller_crash" in INSTANT_KINDS
