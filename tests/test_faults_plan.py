"""FaultPlan: seed-derived schedules must be valid and bit-reproducible."""

import pytest

from repro.faults.plan import (
    CONTROLLER_KINDS,
    DEVICE_KINDS,
    FAULT_KINDS,
    GENERATED_KINDS,
    INSTANT_KINDS,
    RECOVERY_TAIL_FRAC,
    WORKER_KINDS,
    FaultEvent,
    FaultPlan,
)


def test_same_seed_same_plan():
    a = FaultPlan.generate(7, 900.0)
    b = FaultPlan.generate(7, 900.0)
    assert a == b
    assert a.digest_text() == b.digest_text()


def test_different_seed_different_plan():
    a = FaultPlan.generate(7, 900.0)
    b = FaultPlan.generate(8, 900.0)
    assert a.digest_text() != b.digest_text()


def test_plan_always_includes_breaker_storm():
    for seed in range(20):
        plan = FaultPlan.generate(seed, 900.0)
        storms = [
            ev for ev in plan.events
            if ev.kind == "io_error" and ev.target == "swap"
            and ev.severity >= 0.9
        ]
        assert storms, f"seed {seed} has no guaranteed swap storm"
        assert any(ev.duration_s >= 45.0 for ev in storms)


def test_every_window_ends_before_recovery_tail():
    for seed in range(20):
        plan = FaultPlan.generate(seed, 900.0)
        tail = RECOVERY_TAIL_FRAC * plan.duration_s
        for ev in plan.events:
            if not ev.instant:
                assert ev.end_s <= tail + 1e-9


def test_events_sorted_by_start():
    plan = FaultPlan.generate(3, 900.0, extra_events=20)
    starts = [ev.start_s for ev in plan.events]
    assert starts == sorted(starts)


def test_instant_kinds_have_zero_duration():
    plan = FaultPlan.generate(5, 900.0, extra_events=40)
    for ev in plan.events:
        if ev.kind in INSTANT_KINDS:
            assert ev.duration_s == 0.0
            assert ev.instant
            assert not ev.active(ev.start_s)


def test_device_kinds_target_a_device():
    plan = FaultPlan.generate(11, 900.0, extra_events=40)
    for ev in plan.events:
        if ev.kind in DEVICE_KINDS:
            assert ev.target in ("swap", "fs")


def test_event_validation():
    with pytest.raises(ValueError):
        FaultEvent(kind="nonsense", target="swap", start_s=0.0,
                   duration_s=1.0)
    with pytest.raises(ValueError):
        FaultEvent(kind="io_error", target="swap", start_s=-1.0,
                   duration_s=1.0)
    with pytest.raises(ValueError):
        FaultEvent(kind="io_error", target="swap", start_s=0.0,
                   duration_s=1.0, severity=1.5)


def test_generate_validation():
    with pytest.raises(ValueError):
        FaultPlan.generate(1, 0.0)
    with pytest.raises(ValueError):
        FaultPlan.generate(1, 900.0, cgroups=())


def test_active_window_semantics():
    ev = FaultEvent(kind="outage", target="swap", start_s=10.0,
                    duration_s=5.0)
    assert not ev.active(9.9)
    assert ev.active(10.0)
    assert ev.active(14.9)
    assert not ev.active(15.0)


def test_all_kinds_are_generable():
    """With enough extra events, every fault kind eventually appears."""
    seen = set()
    for seed in range(30):
        plan = FaultPlan.generate(seed, 900.0, extra_events=10,
                                  controller_faults=2, worker_faults=2,
                                  fleet_hosts=2)
        seen.update(ev.kind for ev in plan.events)
    assert seen == set(FAULT_KINDS)


def test_controller_faults_extend_without_rewriting_the_base_plan():
    """The controller draws come after every base draw, so a seed's
    base schedule is byte-identical with and without them."""
    for seed in (1, 2, 3):
        base = FaultPlan.generate(seed, 900.0)
        extended = FaultPlan.generate(seed, 900.0, controller_faults=3)
        controller_events = [
            ev for ev in extended.events if ev.target == "controller"
        ]
        assert len(controller_events) == 3
        assert tuple(
            ev for ev in extended.events if ev.target != "controller"
        ) == base.events
        for ev in controller_events:
            assert ev.kind in CONTROLLER_KINDS
            assert ev.severity == 1.0
            if ev.kind == "controller_crash":
                assert ev.instant and ev.duration_s == 0.0
            else:
                assert not ev.instant and ev.duration_s > 0.0


def test_generated_kinds_split_is_consistent():
    assert (
        set(GENERATED_KINDS) | set(CONTROLLER_KINDS) | set(WORKER_KINDS)
        == set(FAULT_KINDS)
    )
    assert not set(GENERATED_KINDS) & set(CONTROLLER_KINDS)
    assert not set(WORKER_KINDS) & (
        set(GENERATED_KINDS) | set(CONTROLLER_KINDS)
    )
    assert "controller_crash" in INSTANT_KINDS
    assert "worker_crash" in INSTANT_KINDS
    assert "worker_hang" in INSTANT_KINDS


def test_worker_faults_extend_without_rewriting_the_base_plan():
    """Worker-fault draws come after every existing draw, so a seed's
    plan with the new parameters at their defaults — and its base
    schedule with them non-zero — stays byte-identical."""
    for seed in (1, 2, 3):
        base = FaultPlan.generate(seed, 60.0)
        defaulted = FaultPlan.generate(seed, 60.0, worker_faults=0,
                                       fleet_hosts=5)
        assert defaulted.digest_text() == base.digest_text()
        extended = FaultPlan.generate(seed, 60.0, worker_faults=4,
                                      fleet_hosts=3)
        worker_events = [
            ev for ev in extended.events if ev.kind in WORKER_KINDS
        ]
        assert len(worker_events) == 4
        assert tuple(
            ev for ev in extended.events if ev.kind not in WORKER_KINDS
        ) == base.events


def test_worker_events_are_well_formed():
    for seed in range(10):
        plan = FaultPlan.generate(seed, 600.0, worker_faults=5,
                                  fleet_hosts=4)
        for ev in plan.events:
            if ev.kind not in WORKER_KINDS:
                continue
            slot = int(ev.target.split(":")[1])
            assert ev.target == f"host:{slot}" and 0 <= slot < 4
            if ev.kind in ("worker_crash", "worker_hang"):
                assert ev.instant and ev.duration_s == 0.0
                assert ev.severity == 1.0
            else:  # worker_slow
                assert ev.duration_s > 0.0
                assert 0.3 <= ev.severity <= 1.0


def test_worker_events_method_partitions_by_slot():
    plan = FaultPlan.generate(4, 600.0, worker_faults=6, fleet_hosts=3)
    per_slot = [plan.worker_events(s) for s in range(3)]
    assert sum(len(evs) for evs in per_slot) == 6
    for slot, evs in enumerate(per_slot):
        for ev in evs:
            assert ev.target == f"host:{slot}"
            assert ev.kind in WORKER_KINDS


def test_generate_rejects_bad_fleet_hosts():
    with pytest.raises(ValueError):
        FaultPlan.generate(1, 600.0, fleet_hosts=0)
