"""Unit tests for memory-coldness measurement (Figure 2)."""

import pytest

from repro.analysis.coldness import measure_coldness
from repro.workloads.access import HeatBands
from repro.workloads.apps import AppProfile
from repro.workloads.base import Workload

from tests.helpers import make_mm

MB = 1 << 20
_GB = 1 << 30


def run_profile(bands: HeatBands, duration=600.0, npages=2000):
    mm = make_mm(ram_mb=1024, page_kb=256)
    profile = AppProfile(
        name="x",
        size_gb=npages * 256 * 1024 / _GB,
        anon_frac=0.6,
        bands=bands,
        compress_ratio=3.0,
        nthreads=2,
        cpu_cores=1.0,
    )
    mm.create_cgroup("app")
    w = Workload(mm, profile, "app", seed=17)
    w.start(0.0)
    t = 0.0
    while t < duration:
        w.tick(t, 6.0)
        t += 6.0
    return w, t


def test_profile_fractions_sum_to_one():
    w, now = run_profile(HeatBands(0.5, 0.1, 0.1))
    profile = measure_coldness(w, now)
    total = (
        profile.used_1min + profile.used_2min + profile.used_5min
        + profile.cold
    )
    assert total == pytest.approx(1.0)
    assert profile.warm == pytest.approx(1.0 - profile.cold)


def test_measured_coldness_tracks_declared_bands():
    bands = HeatBands(0.5, 0.08, 0.12)  # Feed's profile, 30% cold
    w, now = run_profile(bands)
    measured = measure_coldness(w, now)
    assert measured.used_1min == pytest.approx(bands.used_1min, abs=0.12)
    assert measured.cold == pytest.approx(bands.cold, abs=0.12)


def test_cold_profile_measures_cold():
    w, now = run_profile(HeatBands(0.1, 0.05, 0.05))
    hot_w, hot_now = run_profile(HeatBands(0.8, 0.05, 0.05))
    assert (
        measure_coldness(w, now).cold
        > measure_coldness(hot_w, hot_now).cold
    )


def test_empty_workload_rejected():
    mm = make_mm()
    profile = AppProfile(
        name="x", size_gb=0.001, anon_frac=0.5,
        bands=HeatBands(0.5, 0.1, 0.1), compress_ratio=2.0,
    )
    mm.create_cgroup("app")
    w = Workload(mm, profile, "app", seed=1)
    with pytest.raises(ValueError):
        measure_coldness(w, 0.0)
