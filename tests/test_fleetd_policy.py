"""PolicySpec: validation, wire form, controller construction."""

import pytest

from repro.core.autotune import AutoTuneSenpai
from repro.core.gswap import GSwapController
from repro.core.senpai import Senpai
from repro.fleetd.policy import (
    POLICY_KINDS,
    PolicyError,
    PolicySpec,
    build_controller,
)


def test_default_spec_is_senpai_defaults():
    spec = PolicySpec()
    assert spec.kind == "senpai"
    assert spec.params == ()
    assert spec.describe() == "senpai(defaults)"


def test_unknown_kind_is_refused():
    with pytest.raises(PolicyError, match="unknown policy kind"):
        PolicySpec.make("lru-madness")


def test_unknown_parameter_is_refused_with_allowed_list():
    with pytest.raises(PolicyError, match="no parameter"):
        PolicySpec.make("senpai", {"not_a_knob": 1.0})


def test_unsettable_fields_are_refused():
    # slo_tiers is a nested structure a JSON-flat spec cannot carry.
    with pytest.raises(PolicyError, match="no parameter"):
        PolicySpec.make("senpai", {"slo_tiers": 1})


def test_non_scalar_value_is_refused():
    with pytest.raises(PolicyError, match="JSON scalar"):
        PolicySpec.make("senpai", {"psi_threshold": [1, 2]})


def test_make_canonicalizes_param_order():
    a = PolicySpec.make("senpai", {"interval_s": 4.0, "psi_threshold": 0.01})
    b = PolicySpec.make("senpai", {"psi_threshold": 0.01, "interval_s": 4.0})
    assert a == b
    assert a.params == (("interval_s", 4.0), ("psi_threshold", 0.01))


def test_wire_round_trip():
    spec = PolicySpec.make("gswap", {"target_promotion_rate": 42.0})
    assert PolicySpec.from_json(spec.to_json()) == spec


def test_from_json_rejects_malformed_documents():
    with pytest.raises(PolicyError, match="must be an object"):
        PolicySpec.from_json("senpai")
    with pytest.raises(PolicyError, match="missing 'kind'"):
        PolicySpec.from_json({"params": {}})
    with pytest.raises(PolicyError, match="'params' must be an object"):
        PolicySpec.from_json({"kind": "senpai", "params": [1]})


def test_autotune_accepts_base_prefixed_senpai_params():
    spec = PolicySpec.make("autotune", {"base.reclaim_ratio": 0.001})
    controller = build_controller(spec)
    assert isinstance(controller, AutoTuneSenpai)
    assert controller.tune.base.reclaim_ratio == 0.001


def test_autotune_rejects_unknown_base_params():
    with pytest.raises(PolicyError, match="no parameter"):
        PolicySpec.make("autotune", {"base.not_a_knob": 1.0})


@pytest.mark.parametrize("kind,cls", [
    ("senpai", Senpai),
    ("autotune", AutoTuneSenpai),
    ("gswap", GSwapController),
])
def test_build_controller_constructs_each_kind(kind, cls):
    assert kind in POLICY_KINDS
    controller = build_controller(PolicySpec.make(kind))
    assert isinstance(controller, cls)


def test_build_controller_returns_fresh_instances():
    spec = PolicySpec.make("senpai", {"interval_s": 4.0})
    assert build_controller(spec) is not build_controller(spec)


def test_build_controller_refuses_foreign_kind():
    # Defensive branch: a spec whose kind slipped past validation
    # (e.g. a future kind decoded by older code) must not build.
    spec = PolicySpec.make("senpai")
    object.__setattr__(spec, "kind", "from-the-future")
    with pytest.raises(PolicyError, match="unknown policy kind"):
        build_controller(spec)
