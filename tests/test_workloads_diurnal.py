"""Unit tests for diurnal load cycling."""

import pytest

from repro.core.senpai import Senpai, SenpaiConfig
from repro.workloads.access import HeatBands
from repro.workloads.apps import AppProfile
from repro.workloads.diurnal import DiurnalWorkload

from tests.helpers import make_mm, small_host

MB = 1 << 20
_GB = 1 << 30

PERIOD = 1200.0  # compressed day


def profile(npages=400) -> AppProfile:
    return AppProfile(
        name="cyclic",
        size_gb=npages * MB / _GB,
        anon_frac=0.6,
        bands=HeatBands(0.4, 0.1, 0.1),
        compress_ratio=3.0,
        nthreads=2,
        cpu_cores=1.0,
    )


def make_workload(**kwargs):
    mm = make_mm(ram_mb=1024, page_kb=1024)
    mm.create_cgroup("app")
    w = DiurnalWorkload(
        mm, profile(), "app", seed=3, period_s=PERIOD, **kwargs
    )
    w.start(0.0)
    return w


def test_parameter_validation():
    mm = make_mm()
    mm.create_cgroup("app")
    with pytest.raises(ValueError):
        DiurnalWorkload(mm, profile(), "app", seed=1, amplitude=1.5)
    with pytest.raises(ValueError):
        DiurnalWorkload(mm, profile(), "app", seed=1,
                        footprint_swing=1.0)


def test_intensity_cycles_around_one():
    w = make_workload(amplitude=0.3)
    quarter = PERIOD / 4
    assert w.intensity(quarter) == pytest.approx(1.3)        # peak
    assert w.intensity(3 * quarter) == pytest.approx(0.7)    # trough
    assert w.intensity(0.0) == pytest.approx(1.0)


def test_footprint_breathes():
    w = make_workload(footprint_swing=0.2)
    base = w.npages_total
    # Walk to the peak: footprint grows.
    t = 0.0
    while t < PERIOD / 4:
        w.tick(t, 10.0)
        t += 10.0
    peak = w.npages_total
    assert peak > base
    # Walk to the trough: the swing pool is released again.
    while t < 3 * PERIOD / 4:
        w.tick(t, 10.0)
        t += 10.0
    trough = w.npages_total
    assert trough < peak
    assert trough >= base  # never below the base population


def test_released_pages_uncharge():
    w = make_workload(footprint_swing=0.3)
    mm = w.mm
    t = 0.0
    while t < PERIOD:
        w.tick(t, 10.0)
        t += 10.0
        # Accounting invariant holds through every breath.
        resident = sum(1 for p in w.pages if p.resident)
        assert mm.cgroup("app").resident_bytes == (
            resident * mm.page_size_bytes
        )


def test_peak_touches_more_than_trough():
    w = make_workload(amplitude=0.6, footprint_swing=0.0)
    peak_work = w.tick(PERIOD / 4, 10.0).work_done
    trough_work = w.tick(3 * PERIOD / 4, 10.0).work_done
    assert peak_work > trough_work


def test_senpai_follows_the_cycle():
    """Over full cycles under Senpai the host stays healthy and the
    cgroup keeps breathing (offload at trough, expansion at peak)."""
    host = small_host(ram_gb=1.0, backend="zswap")
    host.mm.create_cgroup("app")
    host.psi.add_group("app")
    w = DiurnalWorkload(
        host.mm, profile(), "app", seed=3,
        period_s=PERIOD, footprint_swing=0.2,
    )
    w.start(0.0)
    tasks = [host.psi.add_task(f"app/t{i}", "app") for i in range(2)]
    from repro.sim.host import HostedWorkload

    host._hosted["app"] = HostedWorkload(
        workload=w, cgroup_name="app", psi_tasks=tasks
    )
    host.add_controller(
        Senpai(SenpaiConfig(reclaim_ratio=0.003, max_step_frac=0.02))
    )
    host.run(2.5 * PERIOD)
    cg = host.mm.cgroup("app")
    assert cg.offloaded_bytes() > 0
    resident = host.metrics.series("app/resident_bytes")
    # The resident set visibly oscillates across cycles.
    mid = resident.window(PERIOD, 2 * PERIOD)
    assert mid.max() > 1.03 * mid.min()
