"""End-to-end tests of the state-contract analyses (TMO014-016).

The statepkg fixture package seeds known findings at pinned lines —
a checkpoint-coverage gap, a worker-reachable module global, and
misspelled metric names (directly, through a wrapper, and in both
f-string shapes). The repo-tree tests then assert ``src/repro`` is
clean and that the acceptance mutations (deleting a codec field,
adding a memoized global on the worker path) re-fail lint with the
right rule id.
"""

import json
import shutil
from pathlib import Path

from repro.lint import cli
from repro.lint.config import default_config
from repro.lint.flow import analyze_flow

STATEPKG = Path("tests/lint_fixtures/statepkg")
STATE_RULES = ["TMO014", "TMO015", "TMO016"]


def _config(**overrides):
    """The default config with TMO014-016 pointed at statepkg."""
    config = default_config()
    config.rule_options = dict(config.rule_options)
    config.rule_options["TMO014"] = {
        "codec_modules": ("statepkg.codec",),
        "state_roots": ("statepkg.state",),
        "exempt_class_suffixes": ("state.Ephemeral",),
        "transient_attrs": {},
        **overrides.get("TMO014", {}),
    }
    config.rule_options["TMO015"] = {
        "worker_entrypoints": ("statepkg.workers.run_host",),
    }
    config.rule_options["TMO016"] = {
        "record_sink_suffixes": ("statepkg.metrics.Recorder.record",),
        "record_method_names": ("record",),
        "read_sink_suffixes": ("statepkg.metrics.Recorder.series",),
        "read_method_names": ("series",),
    }
    return config


def _findings(paths, config=None, select=STATE_RULES, cache_path=None):
    result = analyze_flow(
        paths, config or _config(), select=select, cache_path=cache_path
    )
    return [
        (v.rule_id, v.path.rpartition("/")[2], v.line)
        for v in result.violations
    ]


# ----------------------------------------------------------------------
# the fixture package


def test_fixture_package_findings_exact():
    assert _findings([STATEPKG]) == [
        ("TMO016", "emit.py", 11),   # misspelled full name
        ("TMO016", "emit.py", 13),   # registered but never read
        ("TMO016", "emit.py", 15),   # typo through the _emit wrapper
        ("TMO016", "emit.py", 20),   # undeclared per-cgroup suffix
        ("TMO016", "emit.py", 22),   # undeclared dynamic namespace
        ("TMO014", "state.py", 21),  # mutable dict not in codec
        ("TMO014", "state.py", 24),  # evolves outside __init__
        ("TMO015", "workers.py", 15),  # read of mutated global
        ("TMO015", "workers.py", 26),  # write from worker path
    ]


def test_messages_name_the_contract_and_the_fix():
    result = analyze_flow([STATEPKG], _config(), select=STATE_RULES)
    by_key = {(v.rule_id, v.line): v.message for v in result.violations}
    assert "did you mean 'senpai/stale_skips'?" in by_key[("TMO016", 11)]
    assert "never read" in by_key[("TMO016", 13)]
    assert "did you mean 'reclaim'?" in by_key[("TMO016", 15)]
    assert "PER_CGROUP_METRICS" in by_key[("TMO016", 20)]
    assert "DYNAMIC_NAMESPACES" in by_key[("TMO016", 22)]
    assert "Leaky.backlog" in by_key[("TMO014", 21)]
    assert "tmo-lint: transient" in by_key[("TMO014", 21)]
    assert "run_host" in by_key[("TMO015", 26)]
    assert "_RESULTS" in by_key[("TMO015", 26)]


def test_transient_allowlist_suppresses_coverage_gaps():
    config = _config(TMO014={
        "transient_attrs": {"Leaky": ("backlog", "last_seen")},
    })
    rules = [rule for rule, _, _ in _findings([STATEPKG], config)]
    assert "TMO014" not in rules


def test_no_codec_in_analyzed_set_skips_coverage():
    # Coverage is undefined without the codec module, not violated.
    assert _findings([STATEPKG / "state.py"]) == []


def test_no_registry_in_analyzed_set_skips_metric_drift():
    paths = [
        STATEPKG / "emit.py",
        STATEPKG / "metrics.py",
        STATEPKG / "reader.py",
    ]
    assert _findings(paths) == []


# ----------------------------------------------------------------------
# cache invalidation: a codec edit re-triggers TMO014 on classes whose
# facts come straight from the cache


def test_codec_edit_retriggers_coverage_from_cache(tmp_path):
    pkg = tmp_path / "statepkg"
    shutil.copytree(STATEPKG, pkg)
    cache = tmp_path / "cache.json"

    warm = analyze_flow([pkg], _config(), select=["TMO014"],
                        cache_path=cache)
    assert [(v.line) for v in warm.violations] == [21, 24]
    assert warm.cache_misses == warm.files_checked

    # A same-line-count edit: only codec.py's own hash changes, so
    # every other fixture file is served straight from the cache.
    codec = pkg / "codec.py"
    text = codec.read_text()
    text = text.replace(
        '        "samples": list(tracker.samples),',
        '        "payload": list(tracker.history),',
    )
    text = text.replace(
        '    tracker.samples = list(enc["samples"])',
        '    tracker.history = list(enc["payload"])',
    )
    codec.write_text(text)

    rerun = analyze_flow([pkg], _config(), select=["TMO014"],
                         cache_path=cache)
    found = [
        (v.path.rpartition("/")[2], v.line) for v in rerun.violations
    ]
    # Tracker.samples (state.py:9) is newly uncovered even though
    # state.py itself was served from the cache.
    assert ("state.py", 9) in found
    assert rerun.cache_hits == rerun.files_checked - 1
    assert rerun.cache_misses == 1


# ----------------------------------------------------------------------
# acceptance mutations against the real tree


def _copy_src(tmp_path):
    target = tmp_path / "src"
    shutil.copytree("src", target)
    return target


def test_deleting_codec_field_fails_lint_with_tmo014(tmp_path):
    src = _copy_src(tmp_path)
    controllers = src / "repro" / "checkpoint" / "controllers.py"
    text = controllers.read_text()
    mutated = text.replace(
        '        "stale_skips": int(senpai.stale_skips),\n', ""
    ).replace(
        '    senpai.stale_skips = int(enc["stale_skips"])\n', ""
    )
    assert mutated != text
    controllers.write_text(mutated)

    result = analyze_flow([src], default_config(), select=["TMO014"])
    messages = [v.message for v in result.violations]
    assert any("Senpai.stale_skips" in m for m in messages)


def test_worker_path_global_fails_lint_with_tmo015(tmp_path):
    src = _copy_src(tmp_path)
    fleet = src / "repro" / "core" / "fleet.py"
    text = fleet.read_text()
    mutated = text.replace(
        "    profile = APP_CATALOG[plan.app]\n    backend = plan.backend",
        "    profile = _profile_cached(plan.app)\n    backend = plan.backend",
    )
    assert mutated != text
    mutated += (
        "\n\n_PROFILE_CACHE = {}\n\n\n"
        "def _profile_cached(app):\n"
        "    profile = _PROFILE_CACHE.get(app)\n"
        "    if profile is None:\n"
        "        profile = APP_CATALOG[app]\n"
        "        _PROFILE_CACHE[app] = profile\n"
        "    return profile\n"
    )
    fleet.write_text(mutated)

    result = analyze_flow([src], default_config(), select=["TMO015"])
    messages = [v.message for v in result.violations]
    assert any("_PROFILE_CACHE" in m for m in messages)
    assert any("mutates module-level state" in m for m in messages)


# ----------------------------------------------------------------------
# the repo tree itself


def test_repo_tree_is_clean_for_state_contracts():
    paths = [
        Path("src"), Path("benchmarks"), Path("examples"), Path("tests")
    ]
    result = analyze_flow(
        [p for p in paths if p.exists()],
        default_config(),
        select=STATE_RULES,
    )
    assert [v.format_text() for v in result.violations] == []


# ----------------------------------------------------------------------
# --stats


def test_stats_flag_writes_rule_hit_summary(tmp_path):
    stats = tmp_path / "stats.json"
    rc = cli.main([
        "tests/lint_fixtures/tmo001_bad.py",
        "--select", "TMO001", "--no-baseline", "--quiet",
        "--stats", str(stats),
    ])
    assert rc == 1
    payload = json.loads(stats.read_text())
    assert payload["violations_total"] >= 1
    assert payload["rule_hits"]["TMO001"] == payload["violations_total"]
    assert payload["flow"] is None


def test_stats_reports_flow_cache_hits_on_rerun(tmp_path):
    stats = tmp_path / "stats.json"
    cache = tmp_path / "cache.json"
    argv = [
        "tests/lint_fixtures/flowpkg",
        "--flow", "--cache", str(cache), "--no-baseline", "--quiet",
        "--stats", str(stats),
    ]
    cli.main(argv)
    first = json.loads(stats.read_text())
    assert first["flow"]["cache_misses"] == first["flow"]["files_checked"]

    cli.main(argv)
    second = json.loads(stats.read_text())
    assert second["flow"]["cache_hits"] == second["flow"]["files_checked"]
    assert second["rule_hits"] == first["rule_hits"]
