"""Unit tests for the memory manager: allocation, faults, control files."""

import pytest

from repro.kernel.mm import OutOfMemoryError
from repro.kernel.page import PageKind, PageState

from tests.helpers import make_mm

PAGE = 256 * 1024


def test_create_cgroup_and_duplicate():
    mm = make_mm()
    mm.create_cgroup("app")
    with pytest.raises(ValueError):
        mm.create_cgroup("app")


def test_alloc_anon_charges_and_lists():
    mm = make_mm()
    mm.create_cgroup("app")
    pages, stall = mm.alloc_anon("app", 4, now=0.0)
    cg = mm.cgroup("app")
    assert len(pages) == 4
    assert cg.anon_bytes == 4 * PAGE
    assert len(cg.lru[PageKind.ANON]) == 4
    assert stall == 0.0
    assert all(p.state is PageState.RESIDENT for p in pages)


def test_register_file_absent_vs_resident():
    mm = make_mm()
    mm.create_cgroup("app")
    lazy, _ = mm.register_file("app", 2, now=0.0, resident=False)
    warm, _ = mm.register_file("app", 3, now=0.0, resident=True)
    cg = mm.cgroup("app")
    assert all(p.state is PageState.ABSENT for p in lazy)
    assert all(p.state is PageState.RESIDENT for p in warm)
    assert cg.file_bytes == 3 * PAGE


def test_touch_resident_is_free():
    mm = make_mm()
    mm.create_cgroup("app")
    pages, _ = mm.alloc_anon("app", 1, now=0.0)
    result = mm.touch(pages[0], now=1.0)
    assert result.event == "hit"
    assert result.stall_seconds == 0.0
    assert pages[0].last_access == 1.0


def test_touch_absent_file_reads_from_fs():
    mm = make_mm()
    mm.create_cgroup("app")
    pages, _ = mm.register_file("app", 1, now=0.0)
    result = mm.touch(pages[0], now=1.0)
    assert result.event == "file_read"
    assert result.iostall and not result.memstall
    assert result.stall_seconds > 0.0
    assert pages[0].state is PageState.RESIDENT
    assert mm.cgroup("app").vmstat.pgpgin_file == 1


def test_zswap_swap_out_and_back():
    mm = make_mm(backend="zswap")
    mm.create_cgroup("app", compressibility=4.0)
    pages, _ = mm.alloc_anon("app", 10, now=0.0)
    outcome = mm.memory_reclaim("app", 10 * PAGE, now=1.0)
    cg = mm.cgroup("app")
    assert outcome.reclaimed_bytes > 0
    assert cg.zswap_bytes > 0
    # Pool physically holds ~1/4 of the logical bytes (4x ratio).
    assert mm.zswap_pool_bytes < cg.zswap_bytes
    swapped = [p for p in pages if p.state is PageState.ZSWAPPED]
    assert swapped
    result = mm.touch(swapped[0], now=2.0)
    assert result.event == "zswapin"
    assert result.memstall and not result.iostall
    assert cg.vmstat.pswpin == 1


def test_ssd_swap_out_and_back():
    mm = make_mm(backend="ssd")
    mm.create_cgroup("app")
    pages, _ = mm.alloc_anon("app", 10, now=0.0)
    mm.memory_reclaim("app", 10 * PAGE, now=1.0)
    swapped = [p for p in pages if p.state is PageState.SWAPPED]
    assert swapped
    assert mm.cgroup("app").swap_bytes == len(swapped) * PAGE
    result = mm.touch(swapped[0], now=2.0)
    assert result.event == "swapin"
    assert result.memstall and result.iostall


def test_file_only_mode_never_swaps():
    mm = make_mm(backend=None)
    mm.create_cgroup("app")
    mm.alloc_anon("app", 5, now=0.0)
    mm.register_file("app", 5, now=0.0, resident=True)
    outcome = mm.memory_reclaim("app", 10 * PAGE, now=1.0)
    cg = mm.cgroup("app")
    assert cg.swap_bytes == 0 and cg.zswap_bytes == 0
    assert outcome.reclaimed_anon_bytes == 0
    assert outcome.reclaimed_file_bytes > 0


def test_refault_detection_and_psi_classification():
    mm = make_mm()
    mm.create_cgroup("app")
    pages, _ = mm.register_file("app", 20, now=0.0, resident=True)
    mm.alloc_anon("app", 20, now=0.0)
    victim = pages[0]
    mm.memory_reclaim("app", PAGE, now=1.0)
    evicted = [p for p in pages if p.state is PageState.EVICTED]
    assert evicted
    result = mm.touch(evicted[0], now=2.0)
    # Reuse distance 1 << resident size: must be a refault, which
    # stalls on memory AND io.
    assert result.event == "refault"
    assert result.memstall and result.iostall
    assert mm.cgroup("app").vmstat.workingset_refault == 1


def test_memory_max_lowering_reclaims():
    mm = make_mm()
    mm.create_cgroup("app")
    mm.alloc_anon("app", 20, now=0.0)
    cg = mm.cgroup("app")
    assert cg.current_bytes() == 20 * PAGE
    mm.set_memory_max("app", 10 * PAGE, now=1.0)
    assert cg.current_bytes() <= 10 * PAGE


def test_memory_reclaim_is_stateless():
    mm = make_mm()
    mm.create_cgroup("app")
    mm.alloc_anon("app", 20, now=0.0)
    mm.memory_reclaim("app", 5 * PAGE, now=1.0)
    assert mm.cgroup("app").memory_max is None  # no limit installed
    # Expansion afterwards is unimpeded.
    _, stall = mm.alloc_anon("app", 5, now=2.0)
    assert stall == 0.0


def test_alloc_at_limit_enters_direct_reclaim():
    mm = make_mm()
    mm.create_cgroup("app")
    mm.alloc_anon("app", 10, now=0.0)
    mm.set_memory_max("app", 10 * PAGE, now=0.5)
    _, stall = mm.alloc_anon("app", 1, now=1.0)
    cg = mm.cgroup("app")
    assert cg.vmstat.direct_reclaim >= 1
    assert stall > 0.0
    assert cg.current_bytes() <= 10 * PAGE


def test_oom_when_no_reclaimable_memory():
    mm = make_mm(backend=None, ram_mb=1)  # 4 pages of 256 KiB
    mm.create_cgroup("app")
    with pytest.raises(OutOfMemoryError):
        # Anon is unreclaimable in file-only mode: the host fills up.
        mm.alloc_anon("app", 10, now=0.0)


def test_global_reclaim_on_host_pressure():
    mm = make_mm(ram_mb=4, backend="zswap")  # 16 pages
    mm.create_cgroup("a")
    mm.create_cgroup("b")
    mm.alloc_anon("a", 8, now=0.0)
    mm.alloc_anon("b", 8, now=0.0)  # host nearly full
    # Next alloc forces global reclaim rather than OOM.
    pages, stall = mm.alloc_anon("a", 2, now=1.0)
    assert len(pages) == 2
    assert mm.free_bytes() >= 0


def test_release_cgroup_pages():
    mm = make_mm()
    mm.create_cgroup("app")
    pages, _ = mm.alloc_anon("app", 5, now=0.0)
    mm.memory_reclaim("app", 2 * PAGE, now=1.0)
    count = mm.release_cgroup_pages("app")
    cg = mm.cgroup("app")
    assert count == 5
    assert cg.resident_bytes == 0
    assert cg.zswap_bytes == 0
    assert mm.zswap_pool_bytes == 0


def test_used_bytes_includes_zswap_pool():
    mm = make_mm(backend="zswap")
    mm.create_cgroup("app", compressibility=2.0)
    mm.alloc_anon("app", 10, now=0.0)
    before = mm.used_bytes()
    mm.memory_reclaim("app", 10 * PAGE, now=1.0)
    after = mm.used_bytes()
    # Offloading frees page bytes but the pool grows by ~half of them.
    assert after < before
    assert mm.zswap_pool_bytes > 0


def test_swap_in_frees_backend_space():
    mm = make_mm(backend="ssd")
    mm.create_cgroup("app")
    pages, _ = mm.alloc_anon("app", 10, now=0.0)
    mm.memory_reclaim("app", 4 * PAGE, now=1.0)
    stored_before = mm.swap_backend.stored_bytes
    swapped = [p for p in pages if p.state is PageState.SWAPPED]
    mm.touch(swapped[0], now=2.0)
    assert mm.swap_backend.stored_bytes == stored_before - PAGE
