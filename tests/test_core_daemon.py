"""Unit tests for the file-protocol Senpai daemon."""

import pytest

from repro.core.daemon import (
    SenpaiDaemon,
    SenpaiDaemonConfig,
    parse_some_total_us,
)
from repro.core.senpai import Senpai, SenpaiConfig
from repro.workloads.access import HeatBands
from repro.workloads.apps import AppProfile
from repro.workloads.base import Workload

from tests.helpers import small_host

MB = 1 << 20
_GB = 1 << 30


def profile(npages=500) -> AppProfile:
    return AppProfile(
        name="cool",
        size_gb=npages * MB / _GB,
        anon_frac=0.6,
        bands=HeatBands(0.2, 0.05, 0.05),
        compress_ratio=3.0,
        nthreads=2,
        cpu_cores=1.0,
    )


def test_parse_some_total():
    text = ("some avg10=0.12 avg60=0.05 avg300=0.01 total=123456\n"
            "full avg10=0.00 avg60=0.00 avg300=0.00 total=42")
    assert parse_some_total_us(text) == 123456


def test_parse_rejects_non_pressure_text():
    with pytest.raises(ValueError):
        parse_some_total_us("anon 12345")


def test_daemon_requires_explicit_cgroups():
    with pytest.raises(ValueError):
        SenpaiDaemon(SenpaiDaemonConfig())


def test_daemon_offloads_through_control_files():
    host = small_host(ram_gb=1.0, backend="zswap")
    host.add_workload(Workload, profile=profile(), name="app")
    host.add_controller(
        SenpaiDaemon(SenpaiDaemonConfig(cgroups=("app",)))
    )
    host.run(900.0)
    assert host.mm.cgroup("app").zswap_bytes > 0
    # It never installed a limit: pure memory.reclaim.
    assert host.mm.cgroup("app").memory_max is None


def test_daemon_matches_in_process_senpai():
    """The file-protocol daemon and the in-process controller implement
    the same control law; on identical hosts (sans write regulation)
    they must offload comparable volumes."""
    def run(controller_factory):
        host = small_host(ram_gb=1.0, backend="zswap", seed=11)
        host.add_workload(Workload, profile=profile(), name="app")
        host.add_controller(controller_factory())
        host.run(1200.0)
        return host.mm.cgroup("app").offloaded_bytes()

    daemon_offload = run(
        lambda: SenpaiDaemon(SenpaiDaemonConfig(cgroups=("app",)))
    )
    senpai_offload = run(
        lambda: Senpai(SenpaiConfig(write_limit_mb_s=None))
    )
    assert daemon_offload > 0
    ratio = daemon_offload / senpai_offload
    assert 0.5 < ratio < 2.0
