"""Checkpoint/restore: round-trip fidelity and loud refusal of bad input.

Three families of guarantees, per docs/RESILIENCE.md "Recovery":

* **Crash equivalence** — snapshot → kill → restore → continue yields
  byte-identical metric series to never having crashed.
* **Refusal** — a truncated, version-skewed or bit-flipped snapshot
  raises :class:`SnapshotError` naming the offending field or byte
  offset, and never produces a half-restored host.
* **Restore fidelity** — the PR 3 hardening state (circuit-breaker
  phase, per-cgroup error backoff, device fault seams) survives the
  round trip field by field, not just "the digests happen to match".
"""

import copy

import pytest

from repro.checkpoint import (
    SCHEMA_VERSION,
    SnapshotError,
    load_snapshot,
    restore_host,
    save_snapshot,
    snapshot_host,
)
from repro.checkpoint.snapshot import dump_envelope, parse_document
from repro.core.senpai import Senpai, SenpaiConfig, _CgroupState
from repro.faults.chaos import ChaosConfig, build_chaos_host, metrics_digest
from repro.sim.host import Host, HostConfig
from repro.workloads.web import WebWorkload

MB = 1 << 20


def small_host(backend: str = "ssd", seed: int = 11) -> Host:
    host = Host(HostConfig(
        ram_gb=1.0, page_size_bytes=1 * MB, ncpu=8,
        backend=backend, seed=seed,
    ))
    host.add_workload(WebWorkload, name="app", size_scale=0.01)
    host.add_controller(Senpai(SenpaiConfig(interval_s=30.0)))
    return host


# ----------------------------------------------------------------------
# round trip


def test_restore_then_resnapshot_is_byte_identical():
    host = small_host()
    host.run(120.0)
    envelope = host.snapshot()
    restored = Host.restore(envelope)
    again = restored.snapshot()
    assert dump_envelope(again) == dump_envelope(envelope)


@pytest.mark.parametrize("backend", ["zswap", "ssd", "tiered"])
def test_crash_equivalence_per_backend(backend):
    control = small_host(backend=backend)
    control.run(240.0)

    victim = small_host(backend=backend)
    victim.run(120.0)
    text = dump_envelope(victim.snapshot())
    del victim  # the kill: only the serialized text survives
    restored = Host.restore(parse_document(text))
    restored.run(120.0)

    assert metrics_digest(restored.metrics) == metrics_digest(
        control.metrics
    )


def test_crash_equivalence_under_chaos_with_supervisor():
    config = ChaosConfig(
        seed=5, duration_s=300.0, supervised=True, controller_faults=1,
    )
    control, _, _ = build_chaos_host(config)
    control.run(300.0)

    victim, _, _ = build_chaos_host(config)
    victim.run(150.0)
    text = dump_envelope(victim.snapshot())
    del victim
    restored = Host.restore(parse_document(text))
    restored.run(150.0)

    assert metrics_digest(restored.metrics) == metrics_digest(
        control.metrics
    )


def test_save_and_load_snapshot_file(tmp_path):
    host = small_host()
    host.run(90.0)
    path = tmp_path / "host.json"
    digest = save_snapshot(host, str(path))
    assert host.snapshot()["digest"] == digest
    restored = load_snapshot(str(path))
    assert restored.clock.now == host.clock.now
    assert metrics_digest(restored.metrics) == metrics_digest(
        host.metrics
    )


# ----------------------------------------------------------------------
# refusing bad snapshots (loudly)


def test_truncated_snapshot_names_the_byte_offset(tmp_path):
    host = small_host()
    host.run(60.0)
    path = tmp_path / "host.json"
    save_snapshot(host, str(path))
    text = path.read_text(encoding="utf-8")
    cut = len(text) // 2
    path.write_text(text[:cut], encoding="utf-8")
    with pytest.raises(SnapshotError) as excinfo:
        load_snapshot(str(path))
    assert excinfo.value.offset is not None
    assert excinfo.value.offset <= cut
    assert "offset" in str(excinfo.value)


def test_schema_version_mismatch_names_the_field():
    host = small_host()
    host.run(60.0)
    envelope = host.snapshot()
    envelope["schema_version"] = SCHEMA_VERSION + 1
    with pytest.raises(SnapshotError) as excinfo:
        restore_host(envelope)
    assert excinfo.value.field == "schema_version"
    assert str(SCHEMA_VERSION) in str(excinfo.value)


def test_digest_mismatch_names_the_field():
    host = small_host()
    host.run(60.0)
    envelope = copy.deepcopy(host.snapshot())
    envelope["payload"]["clock_now_s"] += 1.0  # corrupt one field
    with pytest.raises(SnapshotError) as excinfo:
        restore_host(envelope)
    assert excinfo.value.field == "digest"


def test_missing_envelope_key_names_the_field():
    host = small_host()
    host.run(60.0)
    envelope = host.snapshot()
    del envelope["digest"]
    with pytest.raises(SnapshotError) as excinfo:
        restore_host(envelope)
    assert excinfo.value.field == "digest"


def test_bad_snapshot_never_yields_a_half_restored_host():
    host = small_host()
    host.run(60.0)
    envelope = copy.deepcopy(host.snapshot())
    # Corruption deep in the payload (an unknown workload type) must be
    # caught by the digest check, before any construction begins.
    envelope["payload"]["hosted"][0]["workload"]["type"] = "Bogus"
    result = None
    with pytest.raises(SnapshotError):
        result = restore_host(envelope)
    assert result is None


# ----------------------------------------------------------------------
# restore fidelity of the PR 3 hardening state


def test_breaker_phase_survives_restore():
    host = small_host()
    host.run(60.0)
    senpai = host.controllers()[-1]
    assert isinstance(senpai, Senpai)
    senpai.breaker_state = "open"
    senpai.breaker_open_count = 2
    senpai.breaker_reclose_count = 1
    senpai._breaker_faulty_streak = 1
    senpai._breaker_opened_at_s = 55.0
    senpai.stale_skips = 3
    senpai.error_skips = 4

    restored = Host.restore(host.snapshot())
    twin = restored.controllers()[-1]
    assert twin.breaker_state == "open"
    assert twin.breaker_open_count == 2
    assert twin.breaker_reclose_count == 1
    assert twin._breaker_faulty_streak == 1
    assert twin._breaker_opened_at_s == 55.0
    assert twin.stale_skips == 3
    assert twin.error_skips == 4


def test_per_cgroup_backoff_timers_survive_restore():
    host = small_host()
    host.run(60.0)
    senpai = host.controllers()[-1]
    senpai._states["app"] = _CgroupState(
        last_mem_total=1.25, last_io_total=0.5, seen=True,
        error_streak=3, skip_until_s=420.0,
    )

    restored = Host.restore(host.snapshot())
    twin_state = restored.controllers()[-1]._states["app"]
    assert twin_state.last_mem_total == 1.25
    assert twin_state.last_io_total == 0.5
    assert twin_state.seen is True
    assert twin_state.error_streak == 3
    assert twin_state.skip_until_s == 420.0


def test_device_fault_state_survives_restore():
    # The SSD swap backend shares one queued device with the
    # filesystem backend, so there is exactly one fault seam to check.
    host = small_host(backend="ssd")
    host.run(60.0)
    assert host.fs.device is host.swap_backend.device
    faults = host.swap_backend.device.faults
    faults.latency_multiplier = 2.5
    faults.io_error_rate = 0.125
    faults.available = False

    restored = Host.restore(host.snapshot())
    assert restored.fs.device is restored.swap_backend.device
    twin = restored.swap_backend.device.faults
    assert twin.latency_multiplier == 2.5
    assert twin.io_error_rate == 0.125
    assert twin.available is False


def test_zswap_fault_state_survives_restore_independently():
    # zswap has its own seam, distinct from the filesystem device's.
    host = small_host(backend="zswap")
    host.run(60.0)
    host.swap_backend.faults.io_error_rate = 0.25
    host.fs.device.faults.latency_multiplier = 3.0

    restored = Host.restore(host.snapshot())
    assert restored.swap_backend.faults.io_error_rate == 0.25
    assert restored.swap_backend.faults.latency_multiplier == 1.0
    assert restored.fs.device.faults.latency_multiplier == 3.0
    assert restored.fs.device.faults.io_error_rate == 0.0


# ----------------------------------------------------------------------
# controller codec: gswap + the control-plane supervisor fields


def test_gswap_controller_codec_round_trips():
    from repro.checkpoint.controllers import (
        decode_controller,
        encode_controller,
    )
    from repro.core.gswap import GSwapConfig, GSwapController, _GswapState

    controller = GSwapController(GSwapConfig(
        target_promotion_rate=42.0, interval_s=7.0, cgroups=("app",),
    ))
    controller._states["app"] = _GswapState(
        step_frac=0.004, last_pswpin=123, seen=True,
    )
    controller._next_poll = 99.0
    doc = encode_controller(controller)
    restored = decode_controller(doc)
    assert isinstance(restored, GSwapController)
    assert restored.config == controller.config
    assert restored._states == controller._states
    assert restored._next_poll == 99.0
    # Round-tripping the restored instance is byte-stable.
    assert encode_controller(restored) == doc


def test_supervisor_codec_carries_unquarantine_count():
    from repro.checkpoint.controllers import (
        decode_controller,
        encode_controller,
    )
    from repro.core.supervisor import Supervisor, SupervisorConfig

    sup = Supervisor(Senpai(SenpaiConfig()), SupervisorConfig())
    sup.unquarantine_count = 3
    doc = encode_controller(sup)
    assert doc["unquarantine_count"] == 3
    assert decode_controller(doc).unquarantine_count == 3


def test_supervisor_codec_defaults_unquarantine_count_for_old_snapshots():
    from repro.checkpoint.controllers import (
        decode_controller,
        encode_controller,
    )
    from repro.core.supervisor import Supervisor, SupervisorConfig

    doc = encode_controller(
        Supervisor(Senpai(SenpaiConfig()), SupervisorConfig())
    )
    del doc["unquarantine_count"]  # a pre-control-plane snapshot
    assert decode_controller(doc).unquarantine_count == 0
