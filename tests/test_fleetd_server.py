"""The fleetd socket protocol: server dispatch + client round-trips.

Uses the ``run`` verb to advance simulated time synchronously, so the
tests never depend on the wall-paced tick thread's progress.
"""

import json
import socket

import pytest

from repro.fleetd.client import FleetdClient, FleetdClientError
from repro.fleetd.engine import FleetdConfig, FleetdEngine
from repro.fleetd.rollout import RolloutConfig
from repro.fleetd.server import FleetdServer
from repro.sim.host import HostConfig

MB = 1 << 20


@pytest.fixture()
def daemon(tmp_path):
    engine = FleetdEngine(FleetdConfig(
        seed=11,
        base_config=HostConfig(
            ram_gb=0.25, page_size_bytes=1 * MB, ncpu=4,
        ),
        rollout=RolloutConfig(
            canary_frac=0.34, wave_frac=1.0,
            baseline_s=20.0, soak_s=20.0,
        ),
        checkpoint_every_s=15.0,
        spool_dir=str(tmp_path / "spool"),
    ))
    # A slow tick interval: the wall thread barely advances during the
    # test; the `run` verb does the driving.
    server = FleetdServer(
        engine, str(tmp_path / "fleetd.sock"), tick_interval_s=5.0,
    )
    server.start()
    try:
        yield server, FleetdClient(server.socket_path)
    finally:
        server.stop()
        engine.close()


def test_ping_and_status(daemon):
    server, client = daemon
    assert client.ping()["pong"] is True
    status = client.status()
    assert status["hosts"] == []
    assert status["frozen"] is False


def test_register_rollout_and_kill_switch_over_the_socket(daemon):
    server, client = daemon
    for i in range(3):
        client.register(f"h{i}", "Feed" if i % 2 == 0 else "Web",
                        size_scale=0.003)
    client.run_ticks(25)
    rollout_id = client.rollout(
        {"kind": "autotune", "params": {}}
    )
    client.run_ticks(60)
    result = client.rollout_status(rollout_id)
    assert result["status"] == "succeeded"
    assert result["kind"] == "fleetd-rollout"
    client.deregister("h2")
    assert len(client.status()["hosts"]) == 2
    assert client.kill_switch() == 0
    with pytest.raises(FleetdClientError, match="kill switch"):
        client.rollout({"kind": "senpai", "params": {}})


def test_reset_quarantine_round_trip(daemon):
    server, client = daemon
    client.register("h0", "Feed", size_scale=0.003)
    client.run_ticks(2)
    assert client.reset_quarantine("h0") is False


def test_daemon_refusals_surface_as_client_errors(daemon):
    server, client = daemon
    with pytest.raises(FleetdClientError, match="not registered"):
        client.deregister("ghost")
    with pytest.raises(FleetdClientError, match="unknown policy"):
        client.rollout({"kind": "nonsense", "params": {}})
    with pytest.raises(FleetdClientError, match="no rollout"):
        client.rollout_status(99)
    with pytest.raises(FleetdClientError, match="ticks must be"):
        client.run_ticks(0)


def test_metrics_and_top_over_the_socket(daemon):
    """The read-only query surface end to end: regions on register,
    validated rollup/top envelopes back, and no digest drift from
    serving the queries."""
    server, client = daemon
    for i, region in enumerate(["east", "west", "east"]):
        entry = client.register(
            f"h{i}", "Feed" if i % 2 == 0 else "Web",
            size_scale=0.003, region=region,
        )
        assert entry["region"] == region
    client.run_ticks(40)
    with server._lock:
        tick_before = server.engine.tick_index
        digest_before = server.engine.fleet_digest()
    rollup = client.metrics(window_s=30.0)
    assert rollup["kind"] == "fleetd-rollup"
    assert rollup["fleet"]["hosts"] == 3
    assert set(rollup["regions"]) == {"east", "west"}
    assert rollup["regions"]["east"]["hosts"] == 2
    top = client.top("psi_mem_some", n=2, window_s=30.0)
    assert top["kind"] == "fleetd-top"
    assert len(top["hosts"]) == 2
    # Serving the queries left the fleet's metrics untouched. The
    # 5s/tick wall thread is effectively parked, but guard against a
    # scheduler fluke: only compare digests if no wall tick landed.
    with server._lock:
        tick_after = server.engine.tick_index
        digest_after = server.engine.fleet_digest()
    if tick_after == tick_before:
        assert digest_after == digest_before
    with pytest.raises(FleetdClientError, match="unknown signal"):
        client.top("no_such_signal")


def test_unknown_command_lists_the_verbs(daemon):
    server, client = daemon
    with pytest.raises(FleetdClientError, match="unknown command"):
        client.request("self-destruct")


def test_malformed_request_gets_a_json_error_not_a_crash(daemon):
    server, client = daemon
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as conn:
        conn.settimeout(5.0)
        conn.connect(server.socket_path)
        conn.sendall(b"this is not json\n")
        raw = conn.recv(65536)
    response = json.loads(raw)
    assert response["ok"] is False
    # The daemon survived: the next request still works.
    assert client.ping()["pong"] is True


def test_stop_verb_shuts_the_daemon_down(daemon):
    server, client = daemon
    client.stop()
    assert server.stopped


def test_client_reports_unreachable_daemon(tmp_path):
    client = FleetdClient(str(tmp_path / "nothing.sock"))
    with pytest.raises(FleetdClientError, match="cannot reach"):
        client.ping()
