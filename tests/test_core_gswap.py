"""Unit tests for the g-swap promotion-rate baseline."""

import pytest

from repro.core.gswap import GSwapConfig, GSwapController
from repro.workloads.access import HeatBands
from repro.workloads.apps import AppProfile
from repro.workloads.base import Workload

from tests.helpers import small_host

MB = 1 << 20
_GB = 1 << 30


def profile(npages=600, hot=0.2) -> AppProfile:
    return AppProfile(
        name="app",
        size_gb=npages * MB / _GB,
        anon_frac=0.7,
        bands=HeatBands(hot, 0.05, 0.05),
        compress_ratio=3.0,
        nthreads=2,
        cpu_cores=1.0,
    )


def run(config: GSwapConfig, duration=900.0, hot=0.2):
    host = small_host(ram_gb=1.0, backend="zswap")
    host.add_workload(Workload, profile=profile(hot=hot), name="app")
    ctrl = host.add_controller(GSwapController(config))
    host.run(duration)
    return host, ctrl


def test_gswap_offloads_memory():
    host, _ = run(GSwapConfig(target_promotion_rate=20.0))
    assert host.mm.cgroup("app").offloaded_bytes() > 0


def test_promotion_rate_respects_target():
    host, _ = run(GSwapConfig(target_promotion_rate=5.0), duration=1200.0)
    rate = host.metrics.series("app/promotion_rate")
    late = rate.window(600.0, 1200.0)
    # The controller backs off whenever the rate crosses the target, so
    # the sustained average stays in the target's neighbourhood.
    assert late.mean() < 15.0


def test_higher_target_offloads_more():
    # A hot workload: offloading it causes promotions, so a low target
    # forces back-off while a high target keeps reclaiming.
    host_low, _ = run(
        GSwapConfig(target_promotion_rate=0.05), hot=0.6
    )
    host_high, _ = run(
        GSwapConfig(target_promotion_rate=100.0), hot=0.6
    )
    assert (
        host_high.mm.cgroup("app").offloaded_bytes()
        > host_low.mm.cgroup("app").offloaded_bytes()
    )


def test_step_adapts_multiplicatively():
    config = GSwapConfig(
        target_promotion_rate=1000.0,  # never reached: step keeps growing
        initial_step_frac=0.001,
        increase_factor=2.0,
        max_step_frac=0.008,
    )
    host, ctrl = run(config, duration=120.0)
    state = ctrl._states["app"]
    assert state.step_frac == pytest.approx(0.008)  # hit the cap


def test_zero_interval_metrics_recorded():
    host, _ = run(GSwapConfig(), duration=60.0)
    assert "app/gswap_reclaim" in host.metrics
