"""Unit tests for the memory-tax sidecar workloads."""

import pytest

from repro.workloads.tax import (
    DATACENTER_TAX_FRAC,
    MICROSERVICE_TAX_FRAC,
    TAX_PROFILES,
    TaxWorkload,
)

from tests.helpers import make_mm

_GB = 1 << 30


def test_tax_fractions_match_figure_3():
    assert DATACENTER_TAX_FRAC == pytest.approx(0.13)
    assert MICROSERVICE_TAX_FRAC == pytest.approx(0.07)
    assert DATACENTER_TAX_FRAC + MICROSERVICE_TAX_FRAC == pytest.approx(0.20)


def test_profiles_sized_for_64gb_host():
    dc = TAX_PROFILES["Datacenter Tax"]
    ms = TAX_PROFILES["Microservice Tax"]
    assert dc.size_gb == pytest.approx(64 * 0.13)
    assert ms.size_gb == pytest.approx(64 * 0.07)


def test_taxes_are_colder_than_average_apps():
    for profile in TAX_PROFILES.values():
        assert profile.bands.cold >= 0.45


def test_unknown_tax_kind_rejected():
    mm = make_mm()
    mm.create_cgroup("side")
    with pytest.raises(KeyError):
        TaxWorkload(mm, "Robot Tax", "side", seed=1)


def test_tax_workload_runs():
    mm = make_mm()
    mm.create_cgroup("side")
    tax = TaxWorkload(mm, "Datacenter Tax", "side", seed=1)
    tax.start(0.0, size_scale=0.01)
    tick = tax.tick(0.0, 6.0)
    assert tick.name == "Datacenter Tax"
    assert tax.kind == "Datacenter Tax"
    assert tax.npages_total > 0
