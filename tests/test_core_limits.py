"""Unit tests for the legacy limit-based Senpai (Section 3.3)."""

from repro.core.limits import LimitSenpai, LimitSenpaiConfig
from repro.workloads.access import HeatBands
from repro.workloads.apps import AppProfile
from repro.workloads.base import Workload

from tests.helpers import small_host

MB = 1 << 20
_GB = 1 << 30


def profile(npages=500, growth_gb_per_hour=0.0) -> AppProfile:
    return AppProfile(
        name="app",
        size_gb=npages * MB / _GB,
        anon_frac=0.6,
        bands=HeatBands(0.2, 0.05, 0.05),
        compress_ratio=3.0,
        nthreads=2,
        cpu_cores=1.0,
        growth_gb_per_hour=growth_gb_per_hour,
    )


def test_installs_and_shrinks_limit():
    host = small_host(ram_gb=1.0)
    host.add_workload(Workload, profile=profile(), name="app")
    host.add_controller(LimitSenpai(LimitSenpaiConfig()))
    host.run(300.0)
    cg = host.mm.cgroup("app")
    assert cg.memory_max is not None
    assert cg.memory_max <= int(500 * MB * 1.02)


def test_limit_reclaims_memory():
    host = small_host(ram_gb=1.0)
    host.add_workload(Workload, profile=profile(), name="app")
    host.add_controller(
        LimitSenpai(LimitSenpaiConfig(shrink_frac=0.005))
    )
    host.run(900.0)
    assert host.mm.cgroup("app").offloaded_bytes() > 0


def test_expanding_workload_hits_the_stale_limit():
    """The pathology that motivated memory.reclaim: growth under a
    stateful limit forces direct reclaim on the allocation path."""
    grow = profile(npages=300, growth_gb_per_hour=600 * MB * 3.6 / _GB)
    host = small_host(ram_gb=1.0)
    host.add_workload(Workload, profile=grow, name="app")
    host.add_controller(
        LimitSenpai(LimitSenpaiConfig(shrink_frac=0.001))
    )
    host.run(600.0)
    cg = host.mm.cgroup("app")
    assert cg.vmstat.direct_reclaim > 0


def test_limit_raised_under_pressure():
    config = LimitSenpaiConfig(psi_threshold=0.0)  # everything is "over"
    host = small_host(ram_gb=1.0)
    host.add_workload(Workload, profile=profile(), name="app")
    host.add_controller(LimitSenpai(config))
    host.run(60.0)
    series = host.metrics.series("app/memory_max")
    assert len(series) >= 2
    assert series.values[-1] >= series.values[0]


def test_metrics_recorded():
    host = small_host(ram_gb=1.0)
    host.add_workload(Workload, profile=profile(), name="app")
    host.add_controller(LimitSenpai(LimitSenpaiConfig()))
    host.run(120.0)
    assert "app/memory_max" in host.metrics
