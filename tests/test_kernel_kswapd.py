"""Unit tests for kswapd-style background reclaim."""

import pytest

from tests.helpers import make_mm

PAGE = 256 * 1024


def test_idle_above_watermark():
    mm = make_mm(ram_mb=64)  # 256 pages
    mm.create_cgroup("app")
    mm.alloc_anon("app", 10, now=0.0)
    assert mm.kswapd(now=1.0) == 0
    assert mm.kswapd_reclaimed_bytes == 0


def test_wakes_below_low_watermark():
    mm = make_mm(ram_mb=64, backend="zswap")
    mm.create_cgroup("app")
    # Fill to ~99.6% (free 1 page < 2% low watermark of ~5 pages).
    mm.alloc_anon("app", 255, now=0.0)
    reclaimed = mm.kswapd(now=1.0)
    assert reclaimed > 0
    # Free memory restored to roughly the high watermark.
    assert mm.free_bytes() >= int(0.03 * mm.ram_bytes)


def test_background_reclaim_has_no_stall():
    mm = make_mm(ram_mb=64, backend="zswap")
    mm.create_cgroup("app")
    mm.alloc_anon("app", 255, now=0.0)
    cpu_before = mm.proactive_cpu_seconds
    mm.kswapd(now=1.0)
    # Cost is accounted as kernel CPU, not as an application stall.
    assert mm.proactive_cpu_seconds > cpu_before
    assert mm.cgroup("app").vmstat.direct_reclaim == 0


def test_on_tick_runs_kswapd():
    mm = make_mm(ram_mb=64, backend="zswap")
    mm.create_cgroup("app")
    mm.alloc_anon("app", 255, now=0.0)
    mm.on_tick(now=1.0, dt=1.0)
    assert mm.kswapd_reclaimed_bytes > 0


def test_kswapd_reduces_direct_reclaim_pressure():
    """With background reclaim keeping headroom, the allocation path
    should rarely block, even under steady growth."""
    mm = make_mm(ram_mb=64, backend="zswap")
    mm.create_cgroup("app")
    mm.alloc_anon("app", 240, now=0.0)
    for t in range(1, 30):
        mm.on_tick(float(t), 1.0)
        mm.alloc_anon("app", 1, float(t))
    # Growth of 29 pages absorbed with (almost) no direct reclaim.
    assert mm.cgroup("app").vmstat.direct_reclaim <= 2
