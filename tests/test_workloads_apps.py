"""Unit tests for the application catalog against the paper's text."""

import pytest

from repro.workloads.apps import (
    APP_CATALOG,
    FIG2_APPS,
    FIG9_APPS,
    AppProfile,
)
from repro.workloads.access import HeatBands


def test_fig2_apps_all_present():
    for name in FIG2_APPS:
        assert name in APP_CATALOG


def test_fig9_apps_all_present():
    for name in FIG9_APPS:
        assert name in APP_CATALOG


def test_cold_share_range_matches_paper():
    """Section 2.2: cold share ranges 19-62%, average ~35%."""
    colds = [APP_CATALOG[name].bands.cold for name in FIG2_APPS]
    assert min(colds) == pytest.approx(0.19, abs=0.02)
    assert max(colds) == pytest.approx(0.62, abs=0.02)
    assert sum(colds) / len(colds) == pytest.approx(0.35, abs=0.03)


def test_web_is_coldest_cache_b_hottest():
    assert APP_CATALOG["Web"].bands.cold == max(
        APP_CATALOG[n].bands.cold for n in FIG2_APPS
    )
    assert APP_CATALOG["Cache B"].bands.cold == min(
        APP_CATALOG[n].bands.cold for n in FIG2_APPS
    )


def test_feed_matches_figure_2_example():
    feed = APP_CATALOG["Feed"].bands
    assert feed.used_1min == pytest.approx(0.50)
    assert feed.used_2min == pytest.approx(0.08)
    assert feed.used_5min == pytest.approx(0.12)
    assert feed.cold == pytest.approx(0.30)


def test_web_compresses_4x():
    assert APP_CATALOG["Web"].compress_ratio == pytest.approx(4.0)


def test_ml_apps_poorly_compressible_use_ssd():
    """Section 4.1: quantised models compress 1.3-1.4x -> SSD backend."""
    for name in ("ML", "Ads B"):
        profile = APP_CATALOG[name]
        assert profile.compress_ratio <= 1.5
        assert profile.preferred_backend == "ssd"


def test_compressible_apps_use_zswap():
    for name in ("Web", "Feed", "Ads A", "Ads C", "Warehouse"):
        assert APP_CATALOG[name].preferred_backend == "zswap"


def test_web_preloads_file_cache():
    assert APP_CATALOG["Web"].file_preload


def test_profile_validation():
    bands = HeatBands(0.4, 0.2, 0.2)
    with pytest.raises(ValueError):
        AppProfile("x", 1.0, anon_frac=1.5, bands=bands, compress_ratio=2.0)
    with pytest.raises(ValueError):
        AppProfile("x", 1.0, anon_frac=0.5, bands=bands, compress_ratio=0.5)
    with pytest.raises(ValueError):
        AppProfile(
            "x", 1.0, anon_frac=0.5, bands=bands, compress_ratio=2.0,
            preferred_backend="floppy",
        )


def test_anon_fractions_vary_wildly():
    """Figure 4: the anon/file split varies wildly across apps."""
    fracs = [p.anon_frac for p in APP_CATALOG.values()]
    assert max(fracs) - min(fracs) > 0.4
