"""Unit tests for reclaim policies and the reclaim loop."""

import pytest

from repro.kernel.page import PageKind, PageState
from repro.kernel.reclaim import LegacyReclaimPolicy, TmoReclaimPolicy

from tests.helpers import make_mm

PAGE = 256 * 1024


# ----------------------------------------------------------------------
# policy balance decisions


def test_tmo_policy_file_only_without_refaults():
    mm = make_mm()
    mm.create_cgroup("app")
    cg = mm.cgroup("app")
    policy = TmoReclaimPolicy()
    assert policy.file_scan_fraction(cg, swap_available=True) == 1.0


def test_tmo_policy_balances_once_refaults_appear():
    mm = make_mm()
    mm.create_cgroup("app")
    cg = mm.cgroup("app")
    cg.refault_rate.rate = 10.0
    cg.swapin_rate.rate = 0.0
    policy = TmoReclaimPolicy()
    frac = policy.file_scan_fraction(cg, swap_available=True)
    # Refaults are expensive, swap-ins free: shift scanning to anon.
    assert frac < 0.5


def test_tmo_policy_shifts_back_when_swapins_dominate():
    mm = make_mm()
    mm.create_cgroup("app")
    cg = mm.cgroup("app")
    cg.refault_rate.rate = 1.0
    cg.swapin_rate.rate = 50.0
    policy = TmoReclaimPolicy()
    frac = policy.file_scan_fraction(cg, swap_available=True)
    assert frac > 0.5


def test_tmo_policy_file_only_without_swap():
    mm = make_mm()
    mm.create_cgroup("app")
    cg = mm.cgroup("app")
    cg.refault_rate.rate = 100.0
    policy = TmoReclaimPolicy()
    assert policy.file_scan_fraction(cg, swap_available=False) == 1.0


def test_legacy_policy_skews_to_file():
    mm = make_mm()
    mm.create_cgroup("app")
    cg = mm.cgroup("app")
    cg.file_bytes = 50 * PAGE
    cg.anon_bytes = 50 * PAGE
    # Even with heavy refaults, legacy stays file-only while file
    # cache is plentiful — the pathology TMO fixed.
    cg.refault_rate.rate = 100.0
    policy = LegacyReclaimPolicy()
    assert policy.file_scan_fraction(cg, swap_available=True) == 1.0


def test_legacy_policy_swaps_only_in_emergency():
    mm = make_mm()
    mm.create_cgroup("app")
    cg = mm.cgroup("app")
    cg.file_bytes = 1 * PAGE
    cg.anon_bytes = 99 * PAGE
    policy = LegacyReclaimPolicy()
    frac = policy.file_scan_fraction(cg, swap_available=True)
    assert frac < 1.0


# ----------------------------------------------------------------------
# reclaim loop behaviour


def test_reclaim_prefers_cold_pages():
    mm = make_mm(backend=None)
    mm.create_cgroup("app")
    pages, _ = mm.register_file("app", 10, now=0.0, resident=True)
    # Touch all but the first two pages twice (promote them).
    for page in pages[2:]:
        mm.touch(page, now=1.0)
        mm.touch(page, now=2.0)
    outcome = mm.memory_reclaim("app", 2 * PAGE, now=3.0)
    assert outcome.reclaimed_bytes == 2 * PAGE
    assert pages[0].state is PageState.EVICTED
    assert pages[1].state is PageState.EVICTED
    assert all(p.state is PageState.RESIDENT for p in pages[2:])


def test_referenced_pages_get_second_chance():
    mm = make_mm(backend=None)
    mm.create_cgroup("app")
    pages, _ = mm.register_file("app", 4, now=0.0, resident=True)
    for page in pages:
        mm.touch(page, now=1.0)  # sets the reference bit
    outcome = mm.memory_reclaim("app", PAGE, now=2.0)
    # Scanning had to clear bits / rotate before finding a victim.
    assert outcome.scanned_pages > 1


def test_reclaim_zero_bytes_is_noop():
    mm = make_mm()
    mm.create_cgroup("app")
    mm.alloc_anon("app", 4, now=0.0)
    outcome = mm.memory_reclaim("app", 0, now=1.0)
    assert outcome.reclaimed_bytes == 0
    assert outcome.scanned_pages == 0


def test_reclaim_empty_cgroup_reports_exhausted():
    mm = make_mm()
    mm.create_cgroup("app")
    outcome = mm.memory_reclaim("app", 10 * PAGE, now=1.0)
    assert outcome.exhausted
    assert outcome.reclaimed_bytes == 0


def test_reclaim_spreads_over_children():
    mm = make_mm()
    mm.create_cgroup("slice")
    mm.create_cgroup("a", parent="slice")
    mm.create_cgroup("b", parent="slice")
    mm.alloc_anon("a", 10, now=0.0)
    mm.alloc_anon("b", 10, now=0.0)
    outcome = mm.memory_reclaim("slice", 4 * PAGE, now=1.0)
    assert outcome.reclaimed_bytes >= 4 * PAGE
    assert mm.cgroup("a").current_bytes() < 10 * PAGE
    assert mm.cgroup("b").current_bytes() < 10 * PAGE


def test_file_only_flag_protects_anon():
    mm = make_mm()
    mm.create_cgroup("app")
    mm.alloc_anon("app", 10, now=0.0)
    mm.register_file("app", 10, now=0.0, resident=True)
    outcome = mm.memory_reclaim("app", 5 * PAGE, now=1.0, file_only=True)
    assert outcome.reclaimed_anon_bytes == 0
    assert outcome.reclaimed_file_bytes > 0


def test_dirty_file_pages_are_written_back():
    mm = make_mm(backend=None)
    mm.create_cgroup("app")
    pages, _ = mm.register_file("app", 4, now=0.0, resident=True)
    for page in pages:
        page.dirty = True
    mm.memory_reclaim("app", 4 * PAGE, now=1.0)
    cg = mm.cgroup("app")
    assert cg.vmstat.pgwriteback == 4
    assert all(not p.dirty for p in pages)


def test_eviction_installs_shadow_entries():
    mm = make_mm(backend=None)
    mm.create_cgroup("app")
    mm.register_file("app", 8, now=0.0, resident=True)
    mm.memory_reclaim("app", 3 * PAGE, now=1.0)
    cg = mm.cgroup("app")
    assert len(cg.shadow) == 3
    assert cg.vmstat.workingset_evict == 3


def test_scan_counters_accumulate():
    mm = make_mm()
    mm.create_cgroup("app")
    mm.alloc_anon("app", 10, now=0.0)
    outcome = mm.memory_reclaim("app", 2 * PAGE, now=1.0)
    cg = mm.cgroup("app")
    assert cg.vmstat.pgscan >= outcome.scanned_pages > 0
    assert cg.vmstat.pgsteal == 2


def test_reclaim_cpu_cost_scales_with_scanning():
    mm = make_mm()
    mm.create_cgroup("app")
    mm.alloc_anon("app", 50, now=0.0)
    outcome = mm.memory_reclaim("app", 10 * PAGE, now=1.0)
    assert outcome.cpu_seconds > 0.0
    assert mm.proactive_cpu_seconds >= outcome.cpu_seconds
