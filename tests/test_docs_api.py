"""Keep docs/API.md in sync with the public surface."""

import importlib.util
import pathlib

REPO = pathlib.Path(__file__).resolve().parents[1]


def load_generator():
    spec = importlib.util.spec_from_file_location(
        "gen_api", REPO / "docs" / "gen_api.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_api_md_is_current(tmp_path):
    gen = load_generator()
    committed = (REPO / "docs" / "API.md").read_text()
    gen.OUT = tmp_path / "API.md"
    gen.main()
    fresh = gen.OUT.read_text()
    assert committed == fresh, (
        "docs/API.md is stale; run `python docs/gen_api.py`"
    )


def test_api_md_covers_core_modules():
    text = (REPO / "docs" / "API.md").read_text()
    for module in (
        "repro.psi.group",
        "repro.kernel.mm",
        "repro.core.senpai",
        "repro.backends.zswap",
        "repro.workloads.base",
        "repro.sim.host",
    ):
        assert f"## `{module}`" in text
