"""Cross-container device interference (the Figure 6 shared-SSD layout).

Swap and the filesystem share one physical SSD, so one container's
offloading traffic inflates its neighbours' fault latencies — the
indirect channel Section 3.3 gives for monitoring IO PSI: "refaults
induced by Senpai might not impact the workload in the form of fault
latencies, but might slow down the storage device enough to impact the
workload's operation indirectly."
"""

import numpy as np
import pytest

from repro.backends.base import IoKind
from repro.backends.filesystem import FilesystemBackend
from repro.backends.ssd import SsdSwapBackend, make_ssd_device

PAGE = 4096
MB = 1 << 20


def shared_pair(seed=1):
    device = make_ssd_device("C", np.random.default_rng(seed))
    fs = FilesystemBackend("C", np.random.default_rng(seed + 1),
                           device=device)
    swap = SsdSwapBackend("C", np.random.default_rng(seed + 2),
                          capacity_bytes=1 << 30, device=device)
    return device, fs, swap


def hammer(device, kind=IoKind.READ, share=0.9, ticks=60):
    """Drive the device at ``share`` of its IOPS until the utilisation
    window converges (weighted ops: one sampled op stands for many)."""
    budget = (device.spec.read_iops if kind is IoKind.READ
              else device.spec.write_iops)
    for tick in range(ticks):
        device.issue(kind, weight=share * budget)
        device.on_tick(float(tick), dt=1.0)


def test_swap_traffic_inflates_fs_latency():
    device, fs, swap = shared_pair()
    calm = np.median([fs.load(PAGE, 3.0, now=0.0) for _ in range(200)])
    hammer(device)  # a neighbour's swap storm on the shared SSD
    busy = np.median([fs.load(PAGE, 3.0, now=61.0) for _ in range(200)])
    assert busy > 2.0 * calm


def test_dedicated_devices_do_not_interfere():
    _, fs, _ = shared_pair(seed=7)
    other_device, _, _ = shared_pair(seed=9)
    calm = np.median([fs.load(PAGE, 3.0, now=0.0) for _ in range(200)])
    hammer(other_device)  # the storm is on a different physical SSD
    after = np.median([fs.load(PAGE, 3.0, now=61.0) for _ in range(200)])
    assert after < 1.5 * calm


def test_interference_decays_when_neighbour_quiets():
    device, _, _ = shared_pair(seed=3)
    hammer(device)
    busy_util = device.utilization
    assert busy_util > 0.5
    for tick in range(200):
        device.on_tick(100.0 + tick, dt=1.0)
    assert device.utilization < busy_util / 5


def test_writes_and_reads_share_the_budget():
    device, _, _ = shared_pair(seed=5)
    hammer(device, kind=IoKind.WRITE, share=0.6)
    # Write pressure alone pushed utilisation up, which taxes reads.
    assert device.utilization > 0.3
    read = device.expected_latency(IoKind.READ, 50.0)
    fresh = make_ssd_device("C", np.random.default_rng(11))
    assert read > 1.3 * fresh.expected_latency(IoKind.READ, 50.0)
