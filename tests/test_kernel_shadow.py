"""Unit tests for shadow entries and refault detection."""

from repro.kernel.shadow import ShadowMap


def test_clock_starts_at_zero():
    shadow = ShadowMap()
    assert shadow.eviction_clock == 0
    assert len(shadow) == 0


def test_eviction_advances_clock():
    shadow = ShadowMap()
    assert shadow.record_eviction(1) == 0
    assert shadow.record_eviction(2) == 1
    assert shadow.eviction_clock == 2


def test_reuse_distance_counts_interleaving_evictions():
    shadow = ShadowMap()
    shadow.record_eviction(1)
    for other in range(100, 105):
        shadow.record_eviction(other)
    assert shadow.reuse_distance(1) == 6
    assert shadow.reuse_distance(104) == 1


def test_no_shadow_no_distance():
    shadow = ShadowMap()
    assert shadow.reuse_distance(42) is None


def test_refault_within_working_set():
    shadow = ShadowMap()
    shadow.record_eviction(1)
    shadow.record_eviction(2)
    # Distance of page 1 is 2 <= resident size 10: a refault.
    assert shadow.consume(1, resident_pages=10)


def test_cold_fault_beyond_working_set():
    shadow = ShadowMap()
    shadow.record_eviction(1)
    for other in range(2, 30):
        shadow.record_eviction(other)
    # Distance 29 > resident size 10: not part of the working set.
    assert not shadow.consume(1, resident_pages=10)


def test_consume_removes_entry():
    shadow = ShadowMap()
    shadow.record_eviction(1)
    shadow.consume(1, resident_pages=10)
    assert shadow.reuse_distance(1) is None


def test_consume_without_shadow_is_cold():
    shadow = ShadowMap()
    assert not shadow.consume(99, resident_pages=1000)


def test_forget_drops_entry():
    shadow = ShadowMap()
    shadow.record_eviction(1)
    shadow.forget(1)
    assert len(shadow) == 0
    shadow.forget(1)  # idempotent


def test_capacity_bound_prunes_oldest():
    shadow = ShadowMap(capacity_entries=3)
    for pid in range(5):
        shadow.record_eviction(pid)
    assert len(shadow) == 3
    assert shadow.reuse_distance(0) is None  # pruned
    assert shadow.reuse_distance(4) is not None


def test_re_eviction_updates_stamp():
    shadow = ShadowMap()
    shadow.record_eviction(1)
    shadow.record_eviction(2)
    shadow.record_eviction(1)  # evicted again later
    assert shadow.reuse_distance(1) == 1
