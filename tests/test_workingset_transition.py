"""Working-set transitions and the major-fault fallacy (Section 3.2).

"Elevated major fault counts could be due to a workload starting up or
a working set transition, and not due to a shortage of memory."
PSI distinguishes: the transition's faults are first-reads of newly-hot
file pages, which stall on IO but are not memory pressure.
"""

import pytest

from repro.core.senpai import Senpai, SenpaiConfig
from repro.psi.types import Resource
from repro.workloads.access import HeatBands
from repro.workloads.apps import AppProfile
from repro.workloads.base import Workload

from tests.helpers import small_host

MB = 1 << 20
_GB = 1 << 30


def profile(npages=500) -> AppProfile:
    return AppProfile(
        name="app",
        size_gb=npages * MB / _GB,
        anon_frac=0.4,
        bands=HeatBands(0.35, 0.10, 0.10),
        compress_ratio=3.0,
        nthreads=2,
        cpu_cores=1.0,
    )


def test_shift_redeal_counts():
    host = small_host(ram_gb=1.0)
    w = host.add_workload(Workload, profile=profile(), name="app")
    assert w.shift_workingset(0.5, now=0.0) == 250
    assert w.shift_workingset(0.0, now=0.0) == 0
    with pytest.raises(ValueError):
        w.shift_workingset(1.5, now=0.0)


def test_transition_spikes_major_faults_not_memory_psi():
    host = small_host(ram_gb=2.0)  # plenty of memory: no real shortage
    w = host.add_workload(Workload, profile=profile(), name="app")
    host.run(300.0)
    cg = host.mm.cgroup("app")

    before_faults = cg.vmstat.pgmajfault
    mem_before = host.psi.group("app").total(Resource.MEMORY, "some")
    io_before = host.psi.group("app").total(Resource.IO, "some")

    # The working set transitions: formerly-cold file pages become hot.
    w.shift_workingset(0.6, host.clock.now)
    host.run(300.0)

    fault_burst = cg.vmstat.pgmajfault - before_faults
    mem_stall = (
        host.psi.group("app").total(Resource.MEMORY, "some") - mem_before
    )
    io_stall = host.psi.group("app").total(Resource.IO, "some") - io_before

    # A clear major-fault burst...
    assert fault_burst > 30
    # ...that shows up as IO time, NOT as memory pressure: there is no
    # memory shortage, so a memory-offloading decision keyed on major
    # faults would be flat wrong here.
    assert io_stall > 0.0
    assert mem_stall < 0.2 * io_stall


def test_senpai_unperturbed_by_transition():
    """Senpai (memory-pressure-driven) keeps reclaiming through a
    transition; the faults it sees are not memory stalls."""
    host = small_host(ram_gb=2.0, backend="zswap")
    w = host.add_workload(Workload, profile=profile(), name="app")
    senpai = host.add_controller(
        Senpai(SenpaiConfig(reclaim_ratio=0.002, io_threshold=0.01))
    )
    host.run(300.0)
    reclaimed_before = senpai.total_reclaimed
    w.shift_workingset(0.6, host.clock.now)
    host.run(300.0)
    # Reclaim continued during/after the transition.
    assert senpai.total_reclaimed > reclaimed_before
