"""Unit tests for the zswap compressed-pool backend."""

import numpy as np
import pytest

from repro.backends.zswap import (
    ZSWAP_ALLOCATORS,
    ZswapBackend,
    ZswapPoolFullError,
)

PAGE = 4096


def make_backend(algorithm="zstd", allocator="zsmalloc", max_pool=None):
    return ZswapBackend(
        np.random.default_rng(0),
        algorithm=algorithm,
        allocator=allocator,
        max_pool_bytes=max_pool,
    )


def test_allocator_catalog():
    assert set(ZSWAP_ALLOCATORS) == {"zbud", "z3fold", "zsmalloc"}


def test_unknown_algorithm_rejected():
    with pytest.raises(KeyError):
        make_backend(algorithm="snappy")


def test_unknown_allocator_rejected():
    with pytest.raises(KeyError):
        make_backend(allocator="slab")


def test_zbud_caps_at_two_pages_per_page():
    zbud = ZSWAP_ALLOCATORS["zbud"]
    # Even 8x-compressible data cannot pack more than 2:1 in zbud.
    assert zbud.stored_footprint(PAGE, PAGE // 8) == PAGE // 2


def test_z3fold_caps_at_three():
    z3fold = ZSWAP_ALLOCATORS["z3fold"]
    footprint = z3fold.stored_footprint(PAGE, PAGE // 8)
    assert footprint == pytest.approx(PAGE / 3, rel=0.01)


def test_zsmalloc_packs_densest():
    compressed = PAGE // 4
    footprints = {
        name: alloc.stored_footprint(PAGE, compressed)
        for name, alloc in ZSWAP_ALLOCATORS.items()
    }
    assert footprints["zsmalloc"] < footprints["z3fold"]
    assert footprints["zsmalloc"] < footprints["zbud"]


def test_incompressible_page_stored_raw():
    backend = make_backend()
    footprint = backend.footprint_of(PAGE, 1.0)
    assert footprint == PAGE


def test_store_grows_pool_by_compressed_footprint():
    backend = make_backend()
    backend.store(PAGE, 4.0, now=0.0)
    assert backend.stored_bytes == PAGE          # logical
    assert backend.pool_bytes < PAGE // 2        # physical, ~PAGE/4/0.9
    assert backend.dram_overhead_bytes == backend.pool_bytes


def test_store_returns_compression_cpu_cost():
    backend = make_backend()
    cost = backend.store(PAGE, 4.0, now=0.0)
    assert cost == pytest.approx(6e-6, rel=0.01)  # zstd on one 4 KiB page
    assert backend.compress_cpu_seconds == pytest.approx(cost)


def test_pool_limit_enforced():
    backend = make_backend(max_pool=PAGE)
    backend.store(PAGE, 1.0, now=0.0)  # raw: fills the pool
    with pytest.raises(ZswapPoolFullError):
        backend.store(PAGE, 1.0, now=0.0)


def test_load_latency_in_tens_of_microseconds():
    backend = make_backend()
    backend.store(PAGE, 4.0, now=0.0)
    lats = [backend.load(PAGE, 4.0, now=1.0) for _ in range(200)]
    p90 = sorted(lats)[int(0.9 * len(lats))]
    # Paper: ~40 us at p90 for a 4 KiB read from compressed memory.
    assert 10e-6 < p90 < 100e-6


def test_free_shrinks_pool():
    backend = make_backend()
    backend.store(PAGE, 4.0, now=0.0)
    backend.free(PAGE, 4.0)
    assert backend.pool_bytes == 0
    assert backend.stored_bytes == 0


def test_zswap_does_not_block_on_io():
    assert not make_backend().blocks_on_io


def test_larger_pages_cost_proportionally_more_cpu():
    backend = make_backend()
    small = backend.store(PAGE, 2.0, now=0.0)
    large = backend.store(16 * PAGE, 2.0, now=0.0)
    assert large == pytest.approx(16 * small, rel=0.01)
