"""Unit tests for PSI triggers."""

import pytest

from repro.psi.group import PsiGroup
from repro.psi.trigger import PsiTrigger, TriggerSet, TriggerSpec
from repro.psi.types import Resource, TaskFlags

MEM = TaskFlags.MEMSTALL
RUN = TaskFlags.RUNNING
NONE = TaskFlags.NONE


def test_parse_kernel_syntax():
    spec = TriggerSpec.parse(Resource.MEMORY, "some 150000 1000000")
    assert spec.kind == "some"
    assert spec.stall_threshold_s == pytest.approx(0.15)
    assert spec.window_s == pytest.approx(1.0)


def test_parse_full_trigger():
    spec = TriggerSpec.parse(Resource.IO, "full 500000 2000000")
    assert spec.kind == "full"
    assert spec.resource is Resource.IO


def test_parse_rejects_garbage():
    with pytest.raises(ValueError):
        TriggerSpec.parse(Resource.MEMORY, "some 150000")
    with pytest.raises(ValueError):
        TriggerSpec.parse(Resource.MEMORY, "maybe 1 2")


def test_spec_validation():
    with pytest.raises(ValueError):
        TriggerSpec(Resource.MEMORY, "some", 0.1, window_s=0.1)  # window too small
    with pytest.raises(ValueError):
        TriggerSpec(Resource.MEMORY, "some", 2.0, window_s=1.0)  # threshold > window
    with pytest.raises(ValueError):
        TriggerSpec(Resource.MEMORY, "weird", 0.1, window_s=1.0)


def stalled_group(stall_per_second: float):
    """A group whose single task stalls ``stall_per_second`` each second."""
    group = PsiGroup("g", ncpu=2)
    return group


def test_fires_on_threshold_crossing():
    group = PsiGroup("g", ncpu=2)
    spec = TriggerSpec(Resource.MEMORY, "some", 0.2, window_s=1.0)
    trigger = PsiTrigger(group, spec, now=0.0)
    group.change_task_state(NONE, MEM, 0.0)
    group.change_task_state(MEM, RUN, 0.5)  # 0.5 s of stall
    assert trigger.update(0.6)
    assert trigger.fire_count == 1


def test_quiet_group_never_fires():
    group = PsiGroup("g", ncpu=2)
    group.change_task_state(NONE, RUN, 0.0)
    spec = TriggerSpec(Resource.MEMORY, "some", 0.1, window_s=1.0)
    trigger = PsiTrigger(group, spec, now=0.0)
    for t in range(1, 20):
        assert not trigger.update(float(t))


def test_rate_limited_to_one_fire_per_window():
    group = PsiGroup("g", ncpu=2)
    group.change_task_state(NONE, MEM, 0.0)  # permanently stalled
    spec = TriggerSpec(Resource.MEMORY, "some", 0.1, window_s=2.0)
    trigger = PsiTrigger(group, spec, now=0.0)
    fires = sum(trigger.update(0.5 * i) for i in range(1, 21))  # 10 s
    # At most one fire per 2 s window over 10 s: ~5 fires.
    assert 4 <= fires <= 6


def test_window_slides_quietly():
    group = PsiGroup("g", ncpu=2)
    spec = TriggerSpec(Resource.MEMORY, "some", 0.5, window_s=1.0)
    trigger = PsiTrigger(group, spec, now=0.0)
    # 0.3 s of stall per 1 s window: never crosses 0.5 s threshold.
    now = 0.0
    for _ in range(10):
        group.change_task_state(NONE, MEM, now)
        group.change_task_state(MEM, NONE, now + 0.3)
        now += 1.0
        assert not trigger.update(now)


def test_full_trigger_distinct_from_some():
    group = PsiGroup("g", ncpu=2)
    # One stalled, one productive: some accrues, full does not.
    group.change_task_state(NONE, MEM, 0.0)
    group.change_task_state(NONE, RUN, 0.0)
    some_spec = TriggerSpec(Resource.MEMORY, "some", 0.3, window_s=1.0)
    full_spec = TriggerSpec(Resource.MEMORY, "full", 0.3, window_s=1.0)
    some_trigger = PsiTrigger(group, some_spec, now=0.0)
    full_trigger = PsiTrigger(group, full_spec, now=0.0)
    assert some_trigger.update(1.0)
    assert not full_trigger.update(1.0)


def test_trigger_set_updates_all():
    group = PsiGroup("g", ncpu=2)
    group.change_task_state(NONE, MEM, 0.0)
    triggers = TriggerSet()
    triggers.register(
        group, TriggerSpec(Resource.MEMORY, "some", 0.1, 1.0), now=0.0
    )
    triggers.register(
        group, TriggerSpec(Resource.IO, "some", 0.1, 1.0), now=0.0
    )
    fired = triggers.update(1.0)
    assert len(triggers) == 2
    assert len(fired) == 1  # only the memory trigger
    assert fired[0].spec.resource is Resource.MEMORY
