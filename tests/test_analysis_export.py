"""Unit tests for CSV metric export."""

import pytest

from repro.analysis.export import to_csv_long, to_csv_wide
from repro.sim.metrics import MetricsRecorder


def recorder():
    rec = MetricsRecorder()
    for t in range(3):
        rec.record("a", float(t), float(t * 10))
        rec.record("b", float(t), float(t * 100))
    rec.record("odd", 0.5, 7.0)
    return rec


def test_long_format_all_series():
    text = to_csv_long(recorder())
    lines = text.strip().splitlines()
    assert lines[0] == "series,time,value"
    assert len(lines) == 1 + 3 + 3 + 1
    assert "a,0.0,0.0" in lines


def test_long_format_selected_series():
    text = to_csv_long(recorder(), names=["b"])
    assert "a," not in text
    assert text.count("\n") == 4  # header + 3 rows


def test_wide_format_common_axis():
    text = to_csv_wide(recorder(), ["a", "b"])
    lines = text.strip().splitlines()
    assert lines[0] == "time,a,b"
    assert lines[1] == "0.0,0.0,0.0"
    assert lines[3] == "2.0,20.0,200.0"


def test_wide_format_rejects_mismatched_axes():
    with pytest.raises(ValueError):
        to_csv_wide(recorder(), ["a", "odd"])


def test_wide_format_needs_names():
    with pytest.raises(ValueError):
        to_csv_wide(recorder(), [])


def test_escaping():
    rec = MetricsRecorder()
    rec.record('weird,"name', 0.0, 1.0)
    text = to_csv_long(rec)
    assert '"weird,""name"' in text


def test_host_metrics_share_time_axis():
    """Host-recorded series are exportable in wide format."""
    from repro.workloads.access import HeatBands
    from repro.workloads.apps import AppProfile
    from repro.workloads.base import Workload

    from tests.helpers import small_host

    MB = 1 << 20
    host = small_host(ram_gb=1.0)
    host.add_workload(
        Workload,
        profile=AppProfile(
            name="x", size_gb=100 * MB / (1 << 30), anon_frac=0.5,
            bands=HeatBands(0.4, 0.1, 0.1), compress_ratio=2.0,
            nthreads=2, cpu_cores=1.0,
        ),
        name="app",
    )
    host.run(10.0)
    text = to_csv_wide(
        host.metrics, ["app/resident_bytes", "app/psi_mem_some_avg10"]
    )
    assert text.count("\n") == 11
