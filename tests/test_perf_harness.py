"""The benchmark harness: report schema, round-trip, regression gate."""

import json
import pathlib

import pytest

from repro.perf import (
    BENCH_ID,
    BENCH_SCHEMA_VERSION,
    DEFAULT_TOLERANCE,
    PRE_PR_TICKS_PER_S,
    check_regression,
    format_report,
    load_report,
    run_bench,
    write_report,
)

SCENARIOS = (
    "microbench_tick",
    "single_host",
    "fleet_serial",
    "fleet_parallel",
    "fleet_faulted",
    "chaos",
)

RESULT_FIELDS = (
    "wall_s",
    "ticks",
    "ticks_per_s",
    "pages_reclaimed",
    "pages_reclaimed_per_s",
    "peak_rss_bytes",
    "normalized_score",
)


@pytest.fixture(scope="module")
def quick_report():
    """One quick benchmark run shared by the schema tests below."""
    return run_bench(quick=True, workers=2)


def test_report_schema(quick_report):
    assert quick_report["schema_version"] == BENCH_SCHEMA_VERSION
    assert quick_report["bench_id"] == BENCH_ID
    assert quick_report["quick"] is True
    assert quick_report["calibration_ops_per_s"] > 0
    assert set(quick_report["scenarios"]) == set(SCENARIOS)
    for name in SCENARIOS:
        entry = quick_report["scenarios"][name]
        assert set(entry) == set(RESULT_FIELDS), name
        assert entry["wall_s"] > 0
        assert entry["ticks"] > 0
        assert entry["ticks_per_s"] > 0
        assert entry["normalized_score"] > 0
        assert entry["peak_rss_bytes"] > 0
    assert set(quick_report["pre_pr"]) == set(PRE_PR_TICKS_PER_S)
    assert set(quick_report["speedup_vs_pre_pr"]) == set(
        PRE_PR_TICKS_PER_S
    )


def test_parallel_digests_match_in_harness_run(quick_report):
    assert quick_report["parallel_digests_match"] is True


def test_report_round_trips_through_json(tmp_path, quick_report):
    path = str(tmp_path / "BENCH_5.json")
    write_report(quick_report, path)
    with open(path) as fh:
        raw = json.load(fh)  # valid JSON on disk
    assert raw == quick_report
    assert load_report(path) == quick_report


def test_load_report_rejects_wrong_schema(tmp_path):
    path = str(tmp_path / "bad.json")
    with open(path, "w") as fh:
        json.dump({"schema_version": 999}, fh)
    with pytest.raises(ValueError, match="schema_version"):
        load_report(path)


def test_format_report_mentions_every_scenario(quick_report):
    text = format_report(quick_report)
    for name in SCENARIOS:
        assert name in text


def test_regression_gate_passes_against_itself(quick_report):
    assert check_regression(quick_report, quick_report) == []


def _with_score(report, name, factor):
    clone = json.loads(json.dumps(report))
    clone["scenarios"][name]["normalized_score"] *= factor
    return clone


def test_regression_gate_flags_a_big_drop(quick_report):
    slower = _with_score(quick_report, "chaos", 1.0 - 2 * DEFAULT_TOLERANCE)
    problems = check_regression(slower, quick_report)
    assert len(problems) == 1
    assert problems[0].startswith("chaos:")


def test_regression_gate_tolerates_a_small_drop(quick_report):
    slower = _with_score(quick_report, "chaos", 1.0 - DEFAULT_TOLERANCE / 2)
    assert check_regression(slower, quick_report) == []


def test_regression_gate_flags_missing_scenarios(quick_report):
    clone = json.loads(json.dumps(quick_report))
    del clone["scenarios"]["fleet_serial"]
    problems = check_regression(clone, quick_report)
    assert problems == ["fleet_serial: missing from current report"]


def test_regression_gate_flags_digest_divergence(quick_report):
    clone = json.loads(json.dumps(quick_report))
    clone["parallel_digests_match"] = False
    problems = check_regression(clone, quick_report)
    assert any("digest" in p for p in problems)


def test_committed_baseline_is_schema_valid():
    baseline = (
        pathlib.Path(__file__).parent.parent
        / "benchmarks" / "BENCH_baseline.json"
    )
    report = load_report(str(baseline))
    assert report["quick"] is False
    assert set(report["scenarios"]) == set(SCENARIOS)
    assert report["parallel_digests_match"] is True
