"""Shared fixtures: small, fast substrate configurations for tests."""

from __future__ import annotations

import numpy as np
import pytest

from tests.helpers import make_mm


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.fixture
def mm():
    return make_mm()


@pytest.fixture
def mm_ssd():
    return make_mm(backend="ssd")


@pytest.fixture
def mm_file_only():
    return make_mm(backend=None)
