"""Property-based tests (hypothesis) on core invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policy import reclaim_amount
from repro.kernel.lru import LruSet
from repro.kernel.page import Page, PageKind
from repro.kernel.shadow import ShadowMap
from repro.psi.avgs import RunningAverages
from repro.psi.group import FULL, SOME, PsiGroup
from repro.psi.types import Resource, TaskFlags

# ----------------------------------------------------------------------
# Senpai formula


@given(
    current=st.integers(min_value=0, max_value=1 << 40),
    pressure=st.floats(min_value=0.0, max_value=1.0,
                       allow_nan=False),
    threshold=st.floats(min_value=1e-6, max_value=1.0, allow_nan=False),
    ratio=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)
def test_reclaim_amount_bounded(current, pressure, threshold, ratio):
    step = reclaim_amount(current, pressure, threshold, ratio)
    assert 0 <= step <= current * 0.01 + 1


@given(
    current=st.integers(min_value=1, max_value=1 << 40),
    threshold=st.floats(min_value=1e-6, max_value=1.0, allow_nan=False),
)
def test_reclaim_amount_monotone_in_pressure(current, threshold):
    steps = [
        reclaim_amount(current, p * threshold, threshold, 0.0005)
        for p in (0.0, 0.25, 0.5, 0.75, 1.0, 2.0)
    ]
    assert steps == sorted(steps, reverse=True)
    assert steps[-1] == 0


# ----------------------------------------------------------------------
# LRU invariants


@st.composite
def lru_operations(draw):
    n = draw(st.integers(min_value=1, max_value=30))
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["touch", "scan", "deactivate"]),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=120,
        )
    )
    return n, ops


@given(lru_operations())
@settings(max_examples=60)
def test_lru_never_loses_or_duplicates_pages(case):
    n, ops = case
    lruset = LruSet(PageKind.FILE, "g")
    pages = [Page(page_id=i, kind=PageKind.FILE, cgroup="g") for i in range(n)]
    alive = set(range(n))
    for page in pages:
        lruset.insert_new(page)
    for op, idx in ops:
        page = pages[idx]
        if op == "touch" and idx in alive:
            lruset.touch(page)
        elif op == "scan":
            victim, evictable = lruset.scan_tail()
            if victim is not None and evictable:
                alive.discard(victim.page_id)
        elif op == "deactivate":
            lruset.deactivate_one()
        # Invariant: resident pages are on exactly one list.
        assert len(lruset) == len(alive)
        on_active = {p.page_id for p in lruset.active}
        on_inactive = {p.page_id for p in lruset.inactive}
        assert not (on_active & on_inactive)
        assert on_active | on_inactive == alive


# ----------------------------------------------------------------------
# shadow map


@given(
    evictions=st.lists(
        st.integers(min_value=0, max_value=50), min_size=1, max_size=200
    )
)
def test_shadow_distance_positive_and_bounded(evictions):
    shadow = ShadowMap()
    for pid in evictions:
        shadow.record_eviction(pid)
    for pid in set(evictions):
        distance = shadow.reuse_distance(pid)
        assert distance is not None
        assert 1 <= distance <= len(evictions)


@given(
    resident=st.integers(min_value=0, max_value=100),
    gap=st.integers(min_value=0, max_value=100),
)
def test_shadow_refault_iff_distance_within_resident(resident, gap):
    shadow = ShadowMap()
    shadow.record_eviction(0)
    for other in range(1, gap + 1):
        shadow.record_eviction(other)
    refault = shadow.consume(0, resident)
    assert refault == (gap + 1 <= resident)


# ----------------------------------------------------------------------
# PSI integrals


@st.composite
def psi_schedules(draw):
    n_tasks = draw(st.integers(min_value=1, max_value=4))
    events = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n_tasks - 1),
                st.sampled_from(
                    [
                        TaskFlags.NONE,
                        TaskFlags.RUNNING,
                        TaskFlags.MEMSTALL,
                        TaskFlags.IOSTALL,
                        TaskFlags.RUNNING | TaskFlags.MEMSTALL,
                        TaskFlags.MEMSTALL | TaskFlags.IOSTALL,
                    ]
                ),
                st.floats(min_value=0.001, max_value=5.0,
                          allow_nan=False),
            ),
            min_size=1,
            max_size=50,
        )
    )
    return n_tasks, events


@given(psi_schedules())
@settings(max_examples=60)
def test_psi_invariants_under_arbitrary_schedules(case):
    n_tasks, events = case
    group = PsiGroup("g", ncpu=2)
    flags = [TaskFlags.NONE] * n_tasks
    now = 0.0
    for task, new_flags, dt in events:
        now += dt
        group.change_task_state(flags[task], new_flags, now)
        flags[task] = new_flags
    group.tick(now + 1.0)
    for resource in Resource:
        some = group.total(resource, SOME)
        full = group.total(resource, FULL)
        # some and full are bounded by wall time and ordered.
        assert 0.0 <= full <= some <= now + 1.0 + 1e-9


@given(
    samples=st.lists(
        st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
        min_size=1,
        max_size=100,
    )
)
def test_running_averages_stay_in_unit_interval(samples):
    avgs = RunningAverages()
    total = 0.0
    for s in samples:
        total += s
        avgs.update(total)
    for window, value in avgs.avgs.items():
        assert 0.0 <= value <= 1.0
