"""Unit tests for the host's scheduler → PSI segment model.

The host converts each workload tick's aggregate stall buckets into
per-thread timeline segments with exact timestamps. These tests pin the
math: CPU sharing under oversubscription, saturation clamping, rotation,
and the resulting PSI integrals.
"""

import pytest

from repro.psi.types import Resource
from repro.sim.host import Host, HostConfig
from repro.workloads.apps import AppProfile
from repro.workloads.access import HeatBands
from repro.workloads.base import TickResult, Workload

MB = 1 << 20
_GB = 1 << 30


class ScriptedWorkload(Workload):
    """A workload whose tick results are fully scripted."""

    def __init__(self, mm, cgroup_name, seed, script=None, profile=None):
        profile = profile or AppProfile(
            name="scripted", size_gb=4 * MB / _GB, anon_frac=1.0,
            bands=HeatBands(0.5, 0.1, 0.1), compress_ratio=2.0,
            nthreads=2, cpu_cores=0.0,
        )
        super().__init__(mm, profile, cgroup_name, seed)
        self.script = script or []
        self._step = 0

    def tick(self, now, dt):
        if self._step < len(self.script):
            result = self.script[self._step]
            self._step += 1
            return result
        return TickResult(name="scripted")


def scripted_host(script, ncpu=4, nthreads=2):
    host = Host(HostConfig(
        ram_gb=0.25, ncpu=ncpu, page_size_bytes=1 * MB, backend=None,
        seed=3, tick_s=1.0,
    ))
    profile = AppProfile(
        name="scripted", size_gb=4 * MB / _GB, anon_frac=1.0,
        bands=HeatBands(0.5, 0.1, 0.1), compress_ratio=2.0,
        nthreads=nthreads, cpu_cores=0.0,
    )
    host.add_workload(
        ScriptedWorkload, name="app", script=script, profile=profile
    )
    return host


def test_pure_stall_integrates_exactly():
    # 1.0 s of memory stall across 2 threads => 0.5 s each, laid onto
    # a 1 s tick: the group's some time is the union.
    script = [TickResult(name="s", stall_mem_s=1.0)]
    host = scripted_host(script)
    host.step()
    some = host.psi.group("app").total(Resource.MEMORY, "some")
    # Each thread stalls 0.5 s; rotation offsets them, so the union is
    # between 0.5 (fully overlapped) and 1.0 (disjoint).
    assert 0.5 <= some <= 1.0 + 1e-9


def test_both_bucket_feeds_memory_and_io():
    script = [TickResult(name="s", stall_both_s=0.6)]
    host = scripted_host(script)
    host.step()
    group = host.psi.group("app")
    mem = group.total(Resource.MEMORY, "some")
    io = group.total(Resource.IO, "some")
    assert mem == pytest.approx(io)
    assert mem > 0.0


def test_saturated_thread_clamped_to_tick():
    # 10 s of stall demanded from 2 threads in a 1 s tick: each thread
    # can stall at most the whole tick.
    script = [TickResult(name="s", stall_mem_s=10.0)]
    host = scripted_host(script)
    host.step()
    some = host.psi.group("app").total(Resource.MEMORY, "some")
    assert some == pytest.approx(1.0, abs=1e-6)


def test_cpu_oversubscription_generates_runnable_wait():
    # Demand 8 CPU-seconds on a 4-CPU host in 1 s: half the demand
    # waits.
    script = [TickResult(name="s", cpu_seconds=8.0)]
    host = scripted_host(script, ncpu=4)
    host.step()
    cpu_some = host.psi.group("app").total(Resource.CPU, "some")
    assert cpu_some > 0.0


def test_undersubscribed_cpu_no_wait():
    script = [TickResult(name="s", cpu_seconds=2.0)]
    host = scripted_host(script, ncpu=4)
    host.step()
    assert host.psi.group("app").total(Resource.CPU, "some") == 0.0


def test_idle_workload_accrues_nothing():
    script = [TickResult(name="s")]
    host = scripted_host(script)
    host.step()
    group = host.psi.group("app")
    for resource in Resource:
        assert group.total(resource, "some") == 0.0


def test_stall_fractions_preserved_over_many_ticks():
    # 20% memory stall per tick for 50 ticks: the group's some share
    # must land near 20% (rotation makes overlap vary per tick).
    script = [
        TickResult(name="s", stall_mem_s=0.4) for _ in range(50)
    ]
    host = scripted_host(script)
    for _ in range(50):
        host.step()
    some = host.psi.group("app").total(Resource.MEMORY, "some")
    share = some / host.clock.now
    assert 0.15 <= share <= 0.45


def test_multiple_workloads_share_cpu_proportionally():
    host = Host(HostConfig(
        ram_gb=0.25, ncpu=2, page_size_bytes=1 * MB, backend=None,
        seed=3, tick_s=1.0,
    ))
    for name in ("a", "b"):
        profile = AppProfile(
            name=name, size_gb=4 * MB / _GB, anon_frac=1.0,
            bands=HeatBands(0.5, 0.1, 0.1), compress_ratio=2.0,
            nthreads=2, cpu_cores=0.0,
        )
        host.add_workload(
            ScriptedWorkload, name=name, profile=profile,
            script=[TickResult(name=name, cpu_seconds=4.0)],
        )
    host.step()
    # Combined demand 8 on 2 CPUs: both groups see CPU pressure.
    for name in ("a", "b"):
        assert host.psi.group(name).total(Resource.CPU, "some") > 0.0
