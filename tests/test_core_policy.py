"""Unit tests for Senpai's reclaim-sizing formula (Section 3.3)."""

import pytest

from repro.core.policy import reclaim_amount

GB = 1 << 30


def test_zero_pressure_full_step():
    step = reclaim_amount(
        current_mem=GB, psi_some=0.0, psi_threshold=0.001,
        reclaim_ratio=0.0005,
    )
    assert step == int(GB * 0.0005)


def test_pressure_at_threshold_stops_reclaim():
    step = reclaim_amount(
        current_mem=GB, psi_some=0.001, psi_threshold=0.001,
        reclaim_ratio=0.0005,
    )
    assert step == 0


def test_pressure_above_threshold_stops_reclaim():
    step = reclaim_amount(
        current_mem=GB, psi_some=0.05, psi_threshold=0.001,
        reclaim_ratio=0.0005,
    )
    assert step == 0


def test_linear_backoff_toward_threshold():
    half = reclaim_amount(
        current_mem=GB, psi_some=0.0005, psi_threshold=0.001,
        reclaim_ratio=0.0005,
    )
    full = reclaim_amount(
        current_mem=GB, psi_some=0.0, psi_threshold=0.001,
        reclaim_ratio=0.0005,
    )
    assert half == pytest.approx(full / 2, abs=1)


def test_step_capped_at_max_fraction():
    step = reclaim_amount(
        current_mem=GB, psi_some=0.0, psi_threshold=0.001,
        reclaim_ratio=0.5,  # absurd ratio
        max_step_frac=0.01,
    )
    assert step == int(GB * 0.01)


def test_scales_with_current_memory():
    small = reclaim_amount(GB, 0.0, 0.001, 0.0005)
    large = reclaim_amount(10 * GB, 0.0, 0.001, 0.0005)
    assert large == pytest.approx(10 * small, abs=10)


def test_zero_memory_zero_step():
    assert reclaim_amount(0, 0.0, 0.001, 0.0005) == 0


def test_validation():
    with pytest.raises(ValueError):
        reclaim_amount(-1, 0.0, 0.001, 0.0005)
    with pytest.raises(ValueError):
        reclaim_amount(GB, 0.0, 0.0, 0.0005)
    with pytest.raises(ValueError):
        reclaim_amount(GB, 0.0, 0.001, -0.1)


def test_contraction_rate_is_minutes_scale():
    """Section 3.3: reaction to extreme contraction tends to be minutes.

    At the production config (0.05% per 6 s period, zero pressure), a
    10% contraction takes ~20 minutes of periods.
    """
    mem = GB
    periods = 0
    while mem > 0.9 * GB:
        mem -= reclaim_amount(mem, 0.0, 0.001, 0.0005)
        periods += 1
    minutes = periods * 6.0 / 60.0
    assert 5.0 < minutes < 60.0
