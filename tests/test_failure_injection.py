"""Failure injection: the system must degrade gracefully, not corrupt.

Scenarios: swap device filling mid-run, zswap pool cap, container
restart storms, killing containers mid-offload, mixed-limit topologies
under global memory pressure, and device faults injected through the
public :class:`~repro.backends.device.DeviceFaultState` seam (see
docs/RESILIENCE.md for the full taxonomy; the seeded end-to-end storms
live in tests/test_faults_*.py).
"""

import pytest

from repro.backends.base import BackendFaultError
from repro.backends.ssd import SwapFullError
from repro.core.senpai import Senpai, SenpaiConfig
from repro.kernel.page import PageKind, PageState
from repro.workloads.access import HeatBands
from repro.workloads.apps import AppProfile
from repro.workloads.base import Workload

from tests.helpers import make_mm, small_host

MB = 1 << 20
_GB = 1 << 30
PAGE = 256 * 1024


def profile(npages=400, **overrides) -> AppProfile:
    defaults = dict(
        name="app",
        size_gb=npages * MB / _GB,
        anon_frac=0.6,
        bands=HeatBands(0.3, 0.1, 0.1),
        compress_ratio=3.0,
        nthreads=2,
        cpu_cores=1.0,
    )
    defaults.update(overrides)
    return AppProfile(**defaults)


def test_swap_fills_mid_reclaim_falls_back_to_file():
    mm = make_mm(backend="ssd", ram_mb=64)
    # Shrink the swap device to 4 pages.
    mm.swap_backend.capacity_bytes = 4 * PAGE
    mm.create_cgroup("app")
    mm.alloc_anon("app", 100, now=0.0)
    mm.register_file("app", 100, now=0.0, resident=True)
    # Push the balance into the anon-leaning regime (heavy refaults),
    # so reclaim *wants* to swap and hits the device cap mid-way.
    cg = mm.cgroup("app")
    cg.refault_rate.rate = 100.0
    outcome = mm.memory_reclaim("app", 40 * PAGE, now=1.0)
    # Swap holds exactly its capacity; the rest came from file.
    assert cg.swap_bytes == 4 * PAGE
    assert outcome.reclaimed_file_bytes >= 30 * PAGE
    assert outcome.reclaimed_bytes >= 38 * PAGE


def test_store_on_full_swap_raises_cleanly():
    mm = make_mm(backend="ssd")
    mm.swap_backend.capacity_bytes = PAGE
    mm.swap_backend._stored = PAGE
    with pytest.raises(SwapFullError):
        mm.swap_backend.store(PAGE, 2.0, now=0.0)


def test_zswap_pool_cap_respected_under_pressure():
    mm = make_mm(backend="zswap", ram_mb=64)
    mm.swap_backend.max_pool_bytes = 2 * PAGE
    mm.create_cgroup("app", compressibility=1.0)  # incompressible
    mm.alloc_anon("app", 100, now=0.0)
    mm.memory_reclaim("app", 50 * PAGE, now=1.0)
    assert mm.swap_backend.pool_bytes <= 2 * PAGE


def test_restart_storm_under_senpai():
    host = small_host(ram_gb=1.0, backend="zswap")
    host.add_workload(Workload, profile=profile(), name="app")
    host.add_controller(
        Senpai(SenpaiConfig(reclaim_ratio=0.005, max_step_frac=0.03))
    )
    for _ in range(5):
        host.run(120.0)
        host.restart_workload("app")
    host.run(120.0)
    cg = host.mm.cgroup("app")
    # Books still balance after repeated teardown/rebuild.
    pages = host.workload("app").pages
    resident = sum(1 for p in pages if p.state is PageState.RESIDENT)
    assert cg.resident_bytes == resident * host.mm.page_size_bytes
    assert host.mm.used_bytes() <= host.mm.ram_bytes


def test_kill_mid_offload_releases_backend_space():
    host = small_host(ram_gb=1.0, backend="ssd")
    host.add_workload(Workload, profile=profile(), name="app")
    host.mm.memory_reclaim("app", 100 * MB, now=0.0)
    assert host.swap_backend.stored_bytes > 0
    host.kill_workload("app")
    assert host.swap_backend.stored_bytes == 0


def test_two_limited_cgroups_under_global_pressure():
    mm = make_mm(ram_mb=64, backend="zswap")  # 256 pages
    mm.create_cgroup("a")
    mm.create_cgroup("b")
    mm.set_memory_max("a", 100 * PAGE, now=0.0)
    mm.set_memory_max("b", 100 * PAGE, now=0.0)
    mm.alloc_anon("a", 100, now=1.0)
    mm.alloc_anon("b", 100, now=2.0)
    # Both at their limits and the host nearly full: further charges
    # force both limit-reclaim and global reclaim without corruption.
    pages, stall = mm.alloc_anon("a", 10, now=3.0)
    assert len(pages) == 10
    assert stall > 0.0
    assert mm.cgroup("a").current_bytes() <= 100 * PAGE
    assert mm.used_bytes() <= mm.ram_bytes


def test_release_of_evicted_file_page_forgets_shadow():
    mm = make_mm(backend=None)
    mm.create_cgroup("app")
    pages, _ = mm.register_file("app", 10, now=0.0, resident=True)
    mm.memory_reclaim("app", 3 * PAGE, now=1.0)
    evicted = [p for p in pages if p.state is PageState.EVICTED]
    assert evicted
    before = len(mm.cgroup("app").shadow)
    mm.release_page(evicted[0])
    assert len(mm.cgroup("app").shadow) == before - 1


def test_senpai_survives_workload_kill():
    """Senpai polling a container that just got killed must not crash."""
    host = small_host(ram_gb=1.0, backend="zswap")
    host.add_workload(Workload, profile=profile(200), name="a")
    host.add_workload(Workload, profile=profile(200), name="b")
    host.add_controller(Senpai(SenpaiConfig()))
    host.run(30.0)
    host.kill_workload("a")
    host.run(30.0)  # would raise if Senpai still targeted "a"
    assert host.has_workload("b")


# ----------------------------------------------------------------------
# device faults through the public seam (DeviceFaultState)


def test_swapin_error_is_refault_with_retry():
    """A failed swap-in must never lose the page: the fault returns a
    stalled retryable result and the page stays loadable."""
    mm = make_mm(backend="ssd", ram_mb=64)
    mm.create_cgroup("app")
    pages, _ = mm.alloc_anon("app", 10, now=0.0)
    mm.memory_reclaim("app", 10 * PAGE, now=1.0)
    victim = next(p for p in pages if p.state is not PageState.RESIDENT)

    mm.swap_backend.device.faults.io_error_rate = 1.0
    result = mm.touch(victim, now=2.0)
    assert result.event in ("swapin_error", "fileread_error")
    assert result.stall_seconds > 0.0
    assert victim.state is not PageState.RESIDENT  # still offloaded
    assert mm.swap_fault_count > 0

    mm.swap_backend.device.faults.clear()
    result = mm.touch(victim, now=3.0)  # the retry succeeds
    assert victim.state is PageState.RESIDENT
    assert mm.cgroup("app").resident_bytes <= mm.ram_bytes


def test_swapout_error_keeps_page_resident_and_books_balanced():
    mm = make_mm(backend="ssd", ram_mb=64)
    mm.create_cgroup("app")
    mm.alloc_anon("app", 50, now=0.0)
    cg = mm.cgroup("app")
    resident_before = cg.resident_bytes

    mm.swap_backend.device.faults.io_error_rate = 1.0
    outcome = mm.memory_reclaim("app", 20 * PAGE, now=1.0)
    # Nothing was swapped; no page vanished; accounting still balances.
    assert cg.swap_bytes == 0
    assert cg.resident_bytes == resident_before - outcome.reclaimed_bytes
    assert mm.swap_fault_count > 0
    assert mm.swap_backend.stored_bytes == 0


def test_unavailable_device_raises_retryable_fault():
    mm = make_mm(backend="ssd")
    mm.swap_backend.device.faults.available = False
    with pytest.raises(BackendFaultError):
        mm.swap_backend.store(PAGE, 2.0, now=0.0)
    assert mm.swap_backend.stored_bytes == 0  # no phantom store


def test_failed_file_writeback_keeps_dirty_page():
    """A dirty file page whose writeback fails must stay resident (it
    holds the only copy of the data)."""
    mm = make_mm(backend=None, ram_mb=64)
    mm.create_cgroup("app")
    pages, _ = mm.register_file("app", 10, now=0.0, resident=True)
    for page in pages:
        page.dirty = True
    mm.fs.device.faults.io_error_rate = 1.0
    mm.memory_reclaim("app", 5 * PAGE, now=1.0)
    assert all(p.state is PageState.RESIDENT for p in pages)
    assert mm.fs_fault_count > 0
    assert len(mm.cgroup("app").shadow) == 0  # no phantom evictions
