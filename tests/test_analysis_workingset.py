"""Unit tests for working-set profiling and miss-ratio curves."""

import pytest

from repro.analysis.workingset import (
    WorkingSetProfiler,
    miss_ratio_curve,
    required_cache_for_miss_ratio,
)
from repro.kernel.page import PageState

from tests.helpers import make_mm

PAGE = 256 * 1024


# ----------------------------------------------------------------------
# profiler


def test_estimate_requires_samples():
    with pytest.raises(ValueError):
        WorkingSetProfiler().estimate()


def test_required_is_min_healthy_footprint():
    profiler = WorkingSetProfiler(pressure_target=1.0)
    profiler.record(0.0, 100, pressure=0.1)
    profiler.record(1.0, 80, pressure=0.5)   # healthy and smaller
    profiler.record(2.0, 60, pressure=2.0)   # too much pressure
    estimate = profiler.estimate()
    assert estimate.required_bytes == 80
    assert estimate.peak_bytes == 100
    assert estimate.samples == 3


def test_overprovision_fraction():
    profiler = WorkingSetProfiler()
    profiler.record(0.0, 100, 0.0)
    profiler.record(1.0, 25, 0.0)
    assert profiler.estimate().overprovision_frac == pytest.approx(0.75)


def test_all_unhealthy_falls_back_to_peak():
    profiler = WorkingSetProfiler(pressure_target=0.5)
    profiler.record(0.0, 100, pressure=3.0)
    estimate = profiler.estimate()
    assert estimate.required_bytes == estimate.peak_bytes == 100


# ----------------------------------------------------------------------
# miss-ratio curve


def test_empty_histogram_empty_curve():
    mm = make_mm()
    mm.create_cgroup("app")
    assert miss_ratio_curve(mm.cgroup("app")) == []


def test_curve_from_synthetic_distances():
    mm = make_mm()
    mm.create_cgroup("app")
    cg = mm.cgroup("app")
    # 10 short reuses (distance 2-3) and 10 long ones (distance 64-127).
    for _ in range(10):
        cg.record_reuse_distance(2)
    for _ in range(10):
        cg.record_reuse_distance(64)
    curve = dict(miss_ratio_curve(cg))
    # With 4 pages of cache, the long half still misses.
    assert curve[4] == pytest.approx(0.5)
    # With 128 pages, everything fits.
    assert curve[128] == pytest.approx(0.0)


def test_curve_is_monotone_nonincreasing():
    mm = make_mm()
    mm.create_cgroup("app")
    cg = mm.cgroup("app")
    for distance in (1, 2, 5, 9, 33, 190, 1000):
        cg.record_reuse_distance(distance)
    ratios = [r for _, r in miss_ratio_curve(cg)]
    assert ratios == sorted(ratios, reverse=True)


def test_required_cache_lookup():
    mm = make_mm()
    mm.create_cgroup("app")
    cg = mm.cgroup("app")
    for _ in range(9):
        cg.record_reuse_distance(2)
    cg.record_reuse_distance(1024)
    # 10% miss tolerance: the small bucket suffices.
    assert required_cache_for_miss_ratio(cg, 0.11) == 4
    with pytest.raises(ValueError):
        required_cache_for_miss_ratio(cg, 1.5)


def test_distances_recorded_by_real_refaults():
    """The fault path populates the histogram organically."""
    mm = make_mm(backend=None)
    mm.create_cgroup("app")
    pages, _ = mm.register_file("app", 20, now=0.0, resident=True)
    mm.memory_reclaim("app", 5 * PAGE, now=1.0)
    evicted = [p for p in pages if p.state is PageState.EVICTED]
    for page in evicted:
        mm.touch(page, now=2.0)
    assert sum(mm.cgroup("app").reuse_distance_hist.values()) == len(evicted)


def test_record_rejects_bad_distance():
    mm = make_mm()
    mm.create_cgroup("app")
    with pytest.raises(ValueError):
        mm.cgroup("app").record_reuse_distance(0)
