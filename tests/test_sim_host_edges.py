"""Edge-case tests for host assembly and lifecycle."""

import pytest

from repro.backends.nvm import FarMemoryBackend
from repro.backends.tiered import TieredBackend
from repro.sim.host import Host, HostConfig
from repro.workloads.access import HeatBands
from repro.workloads.apps import AppProfile
from repro.workloads.base import Workload

from tests.helpers import small_host

MB = 1 << 20
_GB = 1 << 30


def profile(npages=100) -> AppProfile:
    return AppProfile(
        name="app",
        size_gb=npages * MB / _GB,
        anon_frac=0.5,
        bands=HeatBands(0.4, 0.1, 0.1),
        compress_ratio=3.0,
        nthreads=2,
        cpu_cores=1.0,
    )


def test_nvm_and_cxl_backend_selection():
    assert isinstance(small_host(backend="nvm").swap_backend,
                      FarMemoryBackend)
    cxl = small_host(backend="cxl")
    assert isinstance(cxl.swap_backend, FarMemoryBackend)
    assert cxl.swap_backend.spec.name == "cxl"


def test_tiered_backend_selection():
    host = small_host(backend="tiered")
    assert isinstance(host.swap_backend, TieredBackend)
    # Tiered SSD shares the physical device with the filesystem.
    assert host.swap_backend.ssd.device is host.fs.device


def test_duplicate_workload_name_rejected():
    host = small_host()
    host.add_workload(Workload, profile=profile(), name="app")
    with pytest.raises(ValueError):
        host.add_workload(Workload, profile=profile(), name="app")


def test_empty_host_runs():
    host = small_host()
    host.run(5.0)
    assert host.clock.now == pytest.approx(5.0)
    assert host.mm.free_bytes() == host.mm.ram_bytes


def test_controlfs_accessible_from_host():
    host = small_host()
    host.add_workload(Workload, profile=profile(), name="app")
    host.run(2.0)
    current = int(host.controlfs.read("app/memory.current",
                                      host.clock.now))
    assert current == host.mm.cgroup("app").current_bytes()


def test_run_zero_duration_is_noop():
    host = small_host()
    host.add_workload(Workload, profile=profile(), name="app")
    host.run(0.0)
    assert host.clock.now == 0.0


def test_fractional_tick_duration_rounds_up_by_tick():
    host = small_host()
    host.add_workload(Workload, profile=profile(), name="app")
    host.run(2.5)  # tick_s = 1.0: runs 3 full ticks
    assert host.clock.now == pytest.approx(3.0)


def test_kill_unknown_workload_raises():
    host = small_host()
    with pytest.raises(KeyError):
        host.kill_workload("ghost")


def test_metrics_monotone_time_axis():
    host = small_host()
    host.add_workload(Workload, profile=profile(), name="app")
    host.run(10.0)
    times = host.metrics.series("host/free_bytes").times
    assert times == sorted(times)
    assert len(set(times)) == len(times)
