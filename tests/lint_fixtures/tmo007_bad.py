"""Fixture: TMO007 violation — one generator feeds two components."""

from repro.sim.rng import derive_rng

from fixtures_support import Filesystem, make_device


def build(seed):
    rng = derive_rng(seed, "shared")
    fs = Filesystem(rng)
    dev = make_device(rng)
    return fs, dev
