"""Fixture: TMO013 violations — opaque serialization."""

import pickle
import marshal
from pickle import dumps
import shelve


def save(state, path):
    with open(path, "wb") as fh:
        fh.write(dumps(state))
    return pickle, marshal, shelve
