"""Fixture: unit-suffixed quantities, conversions made explicit."""


class Device:
    """A device whose public surface states its units."""

    capacity_bytes = 100

    def __init__(self, size_bytes, timeout_ms):
        self.size_bytes = size_bytes
        self.timeout_ms = timeout_ms


def over_budget(limit_bytes, limit_pages, page_size_bytes):
    limit_pages_bytes = limit_pages * page_size_bytes
    return limit_bytes + limit_pages_bytes
