"""Fixture: TMO004 violations — unit-less quantities, mixed units."""


class Device:
    """A device whose public surface hides its units."""

    capacity = 100

    def __init__(self, size, timeout_ms):
        self.size = size
        self.timeout_ms = timeout_ms


def over_budget(limit_bytes, limit_pages):
    return limit_bytes + limit_pages
