"""The fixture's batched-API registry (same literal-table contract as
``repro.perf.batched``; the lint parses these from the AST)."""

BATCHED_EQUIVALENTS = {
    "hotpkg.engine.Store.touch": "hotpkg.engine.Store.touch_batch",
    "hotpkg.engine.Store.refresh": "hotpkg.engine.Store.refresh_all",
}

SUPERSEDED_SCALAR_APIS = (
    "hotpkg.engine.Store.refresh",
)
