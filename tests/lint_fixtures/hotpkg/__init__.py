"""Fixture package for the hot-path analyses (TMO017-TMO021)."""
