"""Hot-region fixture: one pinned finding per rule TMO017-TMO021.

``run`` is the configured entrypoint. ``cold`` repeats the same
shapes but is unreachable from it, so it must stay clean — hot-path
findings exist only inside the hot region.
"""

from hotpkg.engine import Store


def run(store: Store) -> float:
    total = 0.0
    needles = [1, 2, 3]
    for page in store.pages:
        store.touch(page)                        # line 15: TMO017
        label = f"page-{page}"                   # line 16: TMO018
        if page in needles:                      # line 17: TMO019
            total += 1.0
        scratch = []  # tmo-lint: alloc-ok -- fixture: suppressed on purpose
        scratch.append(label)
    ages = store.ages()
    for age in ages:                             # line 22: TMO020
        total += age
    store.refresh(0)                             # line 24: TMO021
    return total


def cold(store: Store) -> float:
    total = 0.0
    needles = [1, 2, 3]
    for page in store.pages:
        store.touch(page)
        label = f"page-{page}"
        if page in needles:
            total += 1.0
        del label
    for age in store.ages():
        total += age
    store.refresh(0)
    return total
