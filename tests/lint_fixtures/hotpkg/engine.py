"""Fixture store: scalar APIs with registered batched equivalents."""

from typing import List

import numpy as np


class Store:
    def __init__(self) -> None:
        self.pages: List[int] = []
        self.hits = 0

    def touch(self, page: int) -> None:
        self.hits += 1

    def touch_batch(self, pages) -> None:
        # The batched implementation may take the scalar fallback:
        # its owner is exempt from TMO017.
        for page in pages:
            self.touch(page)

    def refresh(self, page: int) -> None:
        self.hits += 1

    def refresh_all(self) -> None:
        self.hits = len(self.pages)

    def ages(self) -> np.ndarray:
        return np.zeros(len(self.pages))
