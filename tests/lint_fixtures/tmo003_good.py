"""Fixture: the sanctioned traversal — sorted() fixes the order."""


def consume(pages):
    groups = {page.cgroup for page in pages}
    for group in sorted(groups):
        print(group)
    return [g.upper() for g in sorted(groups)]
