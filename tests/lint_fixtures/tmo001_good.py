"""Fixture: the sanctioned RNG pattern — derive from the master seed."""

from repro.sim.rng import derive_rng


def draw(seed):
    rng = derive_rng(seed, "fixture:draw")
    return rng.random()
