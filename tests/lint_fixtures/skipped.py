"""Fixture: whole-file opt-out."""
# lint: skip-file

import random


def anything_goes():
    return random.random()
