"""Fixture: the sanctioned default — None plus in-body construction."""


def append(item, items=None):
    if items is None:
        items = []
    items.append(item)
    return items
