"""Recorder facade for the TMO016 metric-registry fixture."""


class Recorder:
    """A minimal stand-in for the simulator's MetricsRecorder."""

    def __init__(self) -> None:
        self.rows = []

    def record(self, name: str, t: float, value: float) -> None:
        self.rows.append((name, t, value))

    def series(self, name: str):
        return [row for row in self.rows if row[0] == name]
