"""ProcessPool worker path for the TMO015 process-safety fixture."""

#: Memoized per-process results: the bug TMO015 exists to catch.
_RESULTS = {}

#: Read-only configuration table: reads of this are fine everywhere.
_LIMITS = {"hosts": 4}


def _capacity() -> int:
    return _LIMITS["hosts"]


def _lookup(plan):
    return _RESULTS.get(plan)  # line 15: read of mutated global


def run_host(plan):
    """The fixture's worker entrypoint (declared in the test config)."""
    if _capacity() < 1:
        return None
    cached = _lookup(plan)
    if cached is not None:
        return cached
    result = len(str(plan))
    _RESULTS[plan] = result  # line 26: write from worker-reachable code
    return result


def reset_serial_state() -> None:
    """Not reachable from the worker: its write is not flagged."""
    _RESULTS.clear()
