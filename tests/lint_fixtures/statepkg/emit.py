"""Metric producers for the TMO016 fixture (typos at pinned lines)."""

from statepkg.metrics import Recorder


def _emit(rec: Recorder, name: str, now: float, value: float) -> None:
    rec.record(name, now, value)


def publish(rec: Recorder, now: float) -> None:
    rec.record("senpai/stale_skps", now, 1.0)  # line 11: misspelled
    rec.record("senpai/errors", now, 2.0)
    rec.record("senpai/unwatched", now, 3.0)  # line 13: never read
    _emit(rec, "web/reclaim", now, 4.0)
    _emit(rec, "web/reclam", now, 5.0)  # line 15: typo through wrapper


def sweep(rec: Recorder, cgroup: str, now: float) -> None:
    rec.record(f"{cgroup}/reclaim", now, 0.0)
    rec.record(f"{cgroup}/promoted", now, 0.0)  # line 20: bad suffix
    rec.record(f"faults/{cgroup}", now, 0.0)
    rec.record(f"chaos/{cgroup}", now, 0.0)  # line 22: bad namespace
