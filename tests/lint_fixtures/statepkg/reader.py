"""Metric readers: what the unread-metric check counts as coverage."""

from statepkg.metrics import Recorder


def check(rec: Recorder) -> int:
    reclaimed = rec.series("web/reclaim")
    stale = rec.series("senpai/stale_skips")
    return len(reclaimed) + len(stale)
