"""Stateful classes for the TMO014 checkpoint-coverage fixture."""


class Tracker:
    """Fully covered: the fixture codec round-trips both fields."""

    def __init__(self) -> None:
        self.count = 0
        self.samples = []

    def bump(self, value: float) -> None:
        self.count += 1
        self.samples.append(value)


class Leaky(Tracker):
    """Inherits covered fields, adds two uncovered mutable ones."""

    def __init__(self) -> None:
        super().__init__()
        self.backlog = {}  # line 21: mutable container, not in codec

    def advance(self, now: float) -> None:
        self.last_seen = now  # line 24: evolves outside __init__

    def rebuild(self) -> None:
        self._cache = {}  # tmo-lint: transient -- derived from samples


class Ephemeral:
    """Exempted wholesale via exempt_class_suffixes in the test."""

    def __init__(self) -> None:
        self.log = []

    def note(self, line: str) -> None:
        self.log.append(line)
