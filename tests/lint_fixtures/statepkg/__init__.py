"""Fixture package for the state-contract analyses (TMO014-016).

Each module seeds known findings at pinned lines; the tests in
``tests/test_lint_statecontract.py`` assert exact rule ids and lines
against configuration overrides that point the analyzer at this
package's own codec, worker entrypoint and metric registry.
"""
