"""Checkpoint codec for the fixture: round-trips Tracker only."""


def encode(tracker) -> dict:
    return {
        "count": int(tracker.count),
        "samples": list(tracker.samples),
    }


def apply(tracker, enc) -> None:
    tracker.count = int(enc["count"])
    tracker.samples = list(enc["samples"])
