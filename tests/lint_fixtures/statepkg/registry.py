"""Declared metric registry for the fixture package."""

METRIC_NAMES = {
    "senpai/stale_skips": "periods skipped on stale telemetry",
    "senpai/errors": "cumulative control-file error skips",
    "senpai/unwatched": "registered but never read by any test",
}

PER_CGROUP_METRICS = {
    "reclaim": "bytes reclaimed from the cgroup",
}

DYNAMIC_NAMESPACES = {
    "faults": "per-kind fault activity, keyed by event kind",
}

UNREAD_OK = frozenset({
    "senpai/errors",
})
