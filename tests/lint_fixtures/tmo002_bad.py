"""Fixture: TMO002 violations — wall-clock and entropy reads."""

import time
from datetime import datetime


def stamp():
    t0 = time.time()
    time.sleep(0.1)
    return t0, datetime.now()
