"""Fixture: TMO008 violations — swallowed exceptions."""


def careless(fn):
    try:
        return fn()
    except:
        return None


def silent(fn):
    try:
        fn()
    except Exception:
        pass
