"""Fixture: the sanctioned time source — the simulation clock."""


def stamp(clock):
    return clock.now
