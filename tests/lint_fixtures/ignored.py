"""Fixture: inline suppression comments."""

import random


def sanctioned():
    return random.random()  # lint: ignore[TMO001]


def all_rules():
    return random.random()  # lint: ignore[*]


def unsanctioned():
    return random.random()
