"""Fixture: TMO001 violations — global RNG state."""

import random

import numpy as np


def draw():
    rng = np.random.default_rng(42)
    noise = np.random.rand()
    random.seed(7)
    return rng, noise, random.random()
