"""Fixture: sanctioned time comparisons — epsilon windows or ticks."""

EPS_S = 1e-9


def at_end(clock, end_s):
    return clock.now >= end_s - EPS_S


def deadline_hit(tick_index, deadline_tick):
    return tick_index == deadline_tick
