"""Fixture: sanctioned handling — name the exception, act on it."""


def careful(fn, log):
    try:
        return fn()
    except (ValueError, KeyError) as exc:
        log.append(str(exc))
        return None
