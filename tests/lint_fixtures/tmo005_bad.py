"""Fixture: TMO005 violations — mutable default arguments."""

import collections


def append(item, items=[]):
    items.append(item)
    return items


def tally(counts=collections.Counter()):
    return counts


def index(mapping=dict()):
    return mapping
