"""Fixture: TMO003 violations — iterating bare sets."""


def consume(pages):
    groups = {page.cgroup for page in pages}
    for group in groups:
        print(group)
    ordered = list(groups)
    label = ",".join(groups)
    upper = [g.upper() for g in groups]
    return ordered, label, upper
