"""Fixture: sanctioned RNG ownership — one derived stream per component."""

from repro.sim.rng import derive_rng

from fixtures_support import Filesystem, make_device


def build(seed):
    fs = Filesystem(derive_rng(seed, "fs"))
    dev = make_device(derive_rng(seed, "device"))
    return fs, dev
