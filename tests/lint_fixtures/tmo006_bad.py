"""Fixture: TMO006 violations — float equality on accumulated time."""


def at_end(clock, end_s):
    if clock.now == end_s:
        return True
    return clock.now != 0.0


def deadline_hit(deadline, now):
    return deadline == now
