"""Fixture: sanctioned serialization — versioned canonical JSON."""

import json


def save(state, path):
    with open(path, "w") as fh:
        json.dump(state, fh, sort_keys=True)
