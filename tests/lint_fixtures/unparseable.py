"""Fixture: a file the parser rejects (reported as TMO000)."""


def broken(:
    pass
