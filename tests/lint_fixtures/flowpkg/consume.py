"""Cross-module unit bugs the flow pass must catch."""

from flowpkg.convert import to_pages, window_s

LIMIT_BYTES = 1 << 30


def reclaim_period(spill_pages):
    return spill_pages + window_s()  # TMO009: pages + seconds


def set_limit(limit_bytes):
    return limit_bytes


def misconfigured_limit():
    spare = to_pages(LIMIT_BYTES)
    return set_limit(spare)  # TMO010: pages into a bytes parameter


def cap_from_pages():
    cap_bytes = to_pages(LIMIT_BYTES)  # TMO011: pages bound to *_bytes
    return cap_bytes
