"""Determinism-taint fixture: wall clock reaching a metric sink."""

import time


class Recorder:
    def __init__(self):
        self.rows = []

    def record(self, name, t, value):
        self.rows.append((name, t, value))


def stamp():
    return time.time()


def flush(rec, value):
    rec.record("tick", stamp(), value)  # TMO012: wall clock at the sink


def report(rec, t):
    rec.record("tick", t, 0.0)


def relay(rec):
    report(rec, time.time())  # TMO012: taint through report() into record
