"""Fixture package for the whole-program flow analysis tests.

Every bug in here crosses a function or module boundary, so none of
the per-file rules (TMO001-TMO008) can see it; the files exist to pin
the interprocedural rules TMO009-TMO012 to exact lines.
"""
