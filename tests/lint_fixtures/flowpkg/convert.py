"""Unit helpers the buggy fixture modules call across the package."""

PAGE_SIZE_BYTES = 4096


def to_pages(amount_bytes):
    n_pages = amount_bytes // PAGE_SIZE_BYTES
    return n_pages


def window_s():
    period_s = 60.0
    return period_s
