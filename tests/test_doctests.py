"""Run the doctest examples embedded in module docstrings."""

import doctest

import pytest

import repro.backends.compression
import repro.core.daemon
import repro.kernel.controlfs
import repro.psi.group
import repro.psi.trigger
import repro.sim.clock

MODULES = [
    repro.backends.compression,
    repro.core.daemon,
    repro.kernel.controlfs,
    repro.psi.group,
    repro.psi.trigger,
    repro.sim.clock,
]


@pytest.mark.parametrize(
    "module", MODULES, ids=[m.__name__ for m in MODULES]
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures"
    # At least the modules we picked actually contain examples.
    if module in (repro.sim.clock, repro.psi.trigger,
                  repro.core.daemon):
        assert results.attempted > 0
