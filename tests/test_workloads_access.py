"""Unit tests for access-pattern generation."""

import numpy as np
import pytest

from repro.workloads.access import (
    HeatBands,
    assign_reaccess_intervals,
    touch_probability,
)


def test_heat_bands_cold_complement():
    bands = HeatBands(0.5, 0.1, 0.1)
    assert bands.cold == pytest.approx(0.3)
    assert bands.warm == pytest.approx(0.7)


def test_heat_bands_validation():
    with pytest.raises(ValueError):
        HeatBands(0.8, 0.3, 0.1)  # sums beyond 1
    with pytest.raises(ValueError):
        HeatBands(-0.1, 0.3, 0.1)


def test_intervals_length_and_positivity(rng):
    bands = HeatBands(0.4, 0.2, 0.2)
    intervals = assign_reaccess_intervals(1000, bands, rng)
    assert len(intervals) == 1000
    assert (intervals > 0).all()


def test_zero_pages(rng):
    bands = HeatBands(0.4, 0.2, 0.2)
    assert len(assign_reaccess_intervals(0, bands, rng)) == 0


def test_negative_pages_rejected(rng):
    with pytest.raises(ValueError):
        assign_reaccess_intervals(-1, HeatBands(0.4, 0.2, 0.2), rng)


def test_hot_profile_yields_short_intervals(rng):
    hot = assign_reaccess_intervals(5000, HeatBands(0.95, 0.02, 0.02), rng)
    cold = assign_reaccess_intervals(5000, HeatBands(0.02, 0.02, 0.02), rng)
    assert np.median(hot) < np.median(cold)


def test_some_cold_pages_never_reaccessed(rng):
    intervals = assign_reaccess_intervals(
        5000, HeatBands(0.0, 0.0, 0.0), rng
    )
    assert (intervals > 1e17).sum() > 1000  # ~35% of all-cold pages


def test_steady_state_matches_bands(rng):
    """Simulated recency distribution should track the declared bands."""
    bands = HeatBands(0.5, 0.1, 0.1)
    intervals = assign_reaccess_intervals(20000, bands, rng)
    # P(touched within last 60s) in steady state = 1 - exp(-60/interval).
    p60 = 1.0 - np.exp(-60.0 / intervals)
    assert p60.mean() == pytest.approx(bands.used_1min, abs=0.12)
    p300 = 1.0 - np.exp(-300.0 / intervals)
    assert p300.mean() == pytest.approx(bands.warm, abs=0.12)


def test_touch_probability_shape():
    intervals = np.array([10.0, 1e18])
    p = touch_probability(intervals, dt=10.0)
    assert p[0] == pytest.approx(1.0 - np.exp(-1.0))
    assert p[1] == pytest.approx(0.0, abs=1e-12)


def test_touch_probability_monotone_in_dt():
    intervals = np.array([30.0])
    p1 = touch_probability(intervals, 1.0)[0]
    p10 = touch_probability(intervals, 10.0)[0]
    assert p10 > p1


def test_touch_probability_rejects_negative_dt():
    with pytest.raises(ValueError):
        touch_probability(np.array([1.0]), -1.0)
