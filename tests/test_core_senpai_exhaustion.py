"""Senpai's swap-exhaustion and endurance modulation (Section 3.3).

"Senpai has additional mechanisms to modulate reclaim in certain events
such as SSD write endurance thresholds being exceeded or swap space
exhaustion."
"""

import numpy as np
import pytest

from repro.backends.ssd import SsdSwapBackend
from repro.core.senpai import Senpai, SenpaiConfig
from repro.workloads.access import HeatBands
from repro.workloads.apps import AppProfile
from repro.workloads.base import Workload

from tests.helpers import small_host

MB = 1 << 20
_GB = 1 << 30


def cold_profile(npages=600) -> AppProfile:
    return AppProfile(
        name="cold",
        size_gb=npages * MB / _GB,
        anon_frac=0.7,
        bands=HeatBands(0.15, 0.05, 0.05),
        compress_ratio=2.0,
        nthreads=2,
        cpu_cores=1.0,
    )


def test_tiny_swap_stops_anon_reclaim_at_margin():
    # 40 MB of swap on a workload with hundreds of MB of cold anon.
    host = small_host(ram_gb=1.0, backend="ssd", swap_gb=40 / 1024)
    host.add_workload(Workload, profile=cold_profile(), name="app")
    senpai = host.add_controller(
        Senpai(SenpaiConfig(reclaim_ratio=0.005, max_step_frac=0.03,
                            write_limit_mb_s=None,
                            swap_free_margin_frac=0.10))
    )
    host.run(900.0)
    backend = host.swap_backend
    # Swap filled only up to (capacity - margin); Senpai backed off to
    # file-only instead of running the device to zero.
    assert backend.free_bytes >= 0.05 * backend.capacity_bytes
    assert backend.stored_bytes > 0
    # Reclaim kept going on the file side regardless.
    assert host.mm.cgroup("app").vmstat.workingset_evict > 0


def test_endurance_threshold_stops_anon_reclaim():
    host = small_host(ram_gb=1.0, backend="ssd")
    host.add_workload(Workload, profile=cold_profile(), name="app")
    # Pretend the device already consumed 95% of its rated endurance.
    backend = host.swap_backend
    backend.endurance_bytes_written = int(
        0.95 * backend.spec.endurance_pbw * 1e15
    )
    host.add_controller(
        Senpai(SenpaiConfig(reclaim_ratio=0.005, max_step_frac=0.03,
                            write_limit_mb_s=None,
                            endurance_limit_frac=0.90))
    )
    wear_before = backend.endurance_bytes_written
    host.run(600.0)
    # No further swap writes on a worn-out device.
    assert backend.endurance_bytes_written == wear_before
    assert host.mm.cgroup("app").swap_bytes == 0


def test_healthy_swap_is_used_normally():
    host = small_host(ram_gb=1.0, backend="ssd", swap_gb=8.0)
    host.add_workload(Workload, profile=cold_profile(), name="app")
    host.add_controller(
        Senpai(SenpaiConfig(reclaim_ratio=0.005, max_step_frac=0.03,
                            write_limit_mb_s=None))
    )
    host.run(600.0)
    assert host.mm.cgroup("app").swap_bytes > 0
