"""``chaos --fleetd``: rollout storms under controller/worker faults.

The satellite acceptance coverage: a rollout storm with
``controller_crash`` / ``worker_hang`` faults must end with every host
on a single policy, digest-deterministic per seed, with the kill
switch winning unconditionally.
"""

import pytest

from repro.fleetd.chaos import (
    BAD_POLICY,
    FleetdChaosConfig,
    FleetdChaosReport,
    format_fleetd_chaos,
    run_fleetd_chaos,
)


@pytest.mark.parametrize("seed", [1, 2])
def test_rollout_storm_degrades_gracefully(seed):
    report = run_fleetd_chaos(FleetdChaosConfig(seed=seed))
    assert report.passed, report.failures()
    # Every rollout record is terminal; the storm always fires the
    # good rollout, the bad one, and the kill-switch interruption.
    assert "succeeded" in report.rollout_statuses
    assert "rolled_back" in report.rollout_statuses
    assert "killed" in report.rollout_statuses
    # No host on a mixed policy, none stuck in quarantine.
    assert report.single_policy
    assert report.quarantined_hosts == 0
    # The kill switch won and stayed won.
    assert report.kill_switch_killed >= 1
    assert report.frozen_after_kill
    assert report.post_kill_refused
    # Determinism witness: both executions digest identically.
    assert report.digest == report.rerun_digest
    assert "PASS" in format_fleetd_chaos(report)


def test_storm_digests_differ_across_seeds():
    a = run_fleetd_chaos(FleetdChaosConfig(seed=1))
    b = run_fleetd_chaos(FleetdChaosConfig(seed=2))
    assert a.digest != b.digest
    assert a.plan_digest != b.plan_digest


def test_bad_policy_constant_is_actually_bad():
    # The storm's forcing function: unreachable pressure target with a
    # huge reclaim step. If someone "fixes" these values the gate-trip
    # leg of the storm silently stops testing anything.
    params = dict(BAD_POLICY.params)
    assert params["psi_threshold"] >= 1.0
    assert params["reclaim_ratio"] >= 0.1


def test_report_failures_name_each_gap():
    report = FleetdChaosReport(
        seed=9,
        hosts=2,
        rollout_statuses=("running",),
        final_generations={"h0": 1, "h1": 1},
        final_policies={
            "h0": {"kind": "senpai", "params": {}},
            "h1": {"kind": "gswap", "params": {}},
        },
        kill_switch_killed=0,
        frozen_after_kill=False,
        post_kill_refused=False,
        digest="aa",
        rerun_digest="bb",
    )
    assert not report.passed
    reasons = " ".join(report.failures())
    assert "mixed policies" in reasons
    assert "non-terminal" in reasons
    assert "kill switch" in reasons
    assert "frozen" in reasons
    assert "post-kill" in reasons
    assert "diverged" in reasons
    assert "FAIL" in format_fleetd_chaos(report)


def test_single_policy_allows_younger_generations_of_same_spec():
    # A re-admitted host legitimately carries generation 0 of the same
    # committed policy; only *spec* divergence is a mixed fleet.
    report = FleetdChaosReport(
        seed=1,
        hosts=2,
        final_generations={"h0": 2, "h1": 0},
        final_policies={
            "h0": {"kind": "autotune", "params": {}},
            "h1": {"kind": "autotune", "params": {}},
        },
    )
    assert report.single_policy


def test_single_policy_rejects_spec_divergence_within_a_generation():
    report = FleetdChaosReport(
        seed=1,
        hosts=2,
        final_generations={"h0": 1, "h1": 1},
        final_policies={
            "h0": {"kind": "autotune", "params": {}},
            "h1": {"kind": "senpai", "params": {}},
        },
    )
    assert not report.single_policy
