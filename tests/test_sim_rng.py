"""Unit tests for the RNG discipline."""

from repro.sim.rng import derive_rng, derive_seed


def test_same_inputs_same_seed():
    assert derive_seed(1, "a") == derive_seed(1, "a")


def test_different_labels_different_seeds():
    assert derive_seed(1, "a") != derive_seed(1, "b")


def test_different_parents_different_seeds():
    assert derive_seed(1, "a") != derive_seed(2, "a")


def test_derived_rngs_reproduce_streams():
    rng1 = derive_rng(7, "device")
    rng2 = derive_rng(7, "device")
    assert rng1.random(8).tolist() == rng2.random(8).tolist()


def test_derived_rngs_are_independent():
    rng1 = derive_rng(7, "device")
    rng2 = derive_rng(7, "workload")
    assert rng1.random(8).tolist() != rng2.random(8).tolist()


def test_seed_is_stable_across_processes():
    # SHA-256 derivation must not depend on hash randomisation.
    assert derive_seed(1234, "backend:fs") == derive_seed(1234, "backend:fs")
    # A pinned value guards against accidental algorithm changes.
    assert derive_seed(0, "x") == derive_seed(0, "x")
