"""Unit tests for SSD write-endurance regulation (Section 4.5)."""

import pytest

from repro.core.write_regulation import WriteRegulator

MB = 1 << 20


def test_under_budget_full_allowance():
    reg = WriteRegulator(limit_mb_s=1.0, window_s=10.0)
    reg.update(bytes_written_total=5 * MB, dt=10.0)  # 0.5 MB/s
    assert reg.allowance() == 1.0
    assert not reg.file_only()


def test_over_budget_scales_down():
    reg = WriteRegulator(limit_mb_s=1.0, window_s=10.0)
    reg.update(bytes_written_total=15 * MB, dt=10.0)  # 1.5 MB/s
    assert reg.allowance() == pytest.approx(1.0 / 1.5, rel=0.01)
    assert not reg.file_only()


def test_severe_overshoot_forces_file_only():
    reg = WriteRegulator(limit_mb_s=1.0, window_s=10.0)
    reg.update(bytes_written_total=50 * MB, dt=10.0)  # 5 MB/s
    assert reg.file_only()
    assert reg.allowance() == pytest.approx(0.2, rel=0.01)


def test_rate_is_smoothed():
    reg = WriteRegulator(limit_mb_s=1.0, window_s=100.0)
    reg.update(bytes_written_total=100 * MB, dt=1.0)  # brief 100 MB/s burst
    # One second of burst against a 100 s window: rate ~1 MB/s.
    assert reg.observed_rate_mb_s == pytest.approx(1.0, rel=0.05)


def test_counter_is_cumulative():
    reg = WriteRegulator(limit_mb_s=1.0, window_s=1.0)
    reg.update(10 * MB, dt=1.0)
    reg.update(10 * MB, dt=1.0)  # no new writes
    assert reg.observed_rate_mb_s == pytest.approx(0.0, abs=0.01)


def test_zero_dt_ignored():
    reg = WriteRegulator()
    reg.update(10 * MB, dt=0.0)
    assert reg.observed_rate_mb_s == 0.0


def test_invalid_limit_rejected():
    with pytest.raises(ValueError):
        WriteRegulator(limit_mb_s=0.0)


def test_convergence_onto_limit():
    """Closed loop: writing at allowance * attempted rate converges to
    the configured limit (the Figure 14 clamp)."""
    reg = WriteRegulator(limit_mb_s=1.0, window_s=30.0)
    attempted_mb_s = 8.0
    total = 0
    achieved = []
    for _ in range(300):
        rate = attempted_mb_s * reg.allowance()
        total += int(rate * MB)
        reg.update(total, dt=1.0)
        achieved.append(rate)
    assert sum(achieved[-50:]) / 50 == pytest.approx(1.0, rel=0.15)
