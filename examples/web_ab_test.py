"""A/B load test: Web on memory-bound hosts (Figure 11's experiment).

Runs three identically seeded tiers of the Web application — no
offloading, TMO with an SSD backend, and TMO with a zswap backend — on
hosts sized so that request-driven memory growth pushes the baseline
into its self-regulation (RPS-throttling) regime. Prints the RPS and
resident-memory trajectories.

Run:  python examples/web_ab_test.py
"""

from repro import Host, HostConfig, Senpai, SenpaiConfig, WebWorkload
from repro.workloads import WebConfig

MB = 1 << 20
DURATION_S = 5400.0


def run_tier(backend):
    host = Host(
        HostConfig(ram_gb=4.0, ncpu=16, page_size_bytes=1 * MB,
                   backend=backend, seed=42, tick_s=2.0)
    )
    host.add_workload(
        WebWorkload, name="web", size_scale=0.066,
        config=WebConfig(anon_growth_frac_per_hour=0.35),
    )
    if backend is not None:
        host.add_controller(
            Senpai(SenpaiConfig(reclaim_ratio=0.002, max_step_frac=0.02))
        )
    host.run(DURATION_S)
    return host


def summarise(name, host):
    rps = host.metrics.series("web/rps")
    resident = host.metrics.series("web/resident_bytes")
    print(f"\n--- {name} ---")
    print(f"{'t (min)':>8} {'RPS':>8} {'resident (MB)':>14}")
    for t in range(0, int(DURATION_S) + 1, 600):
        window = rps.window(max(0, t - 300), t + 300)
        res_window = resident.window(max(0, t - 300), t + 300)
        if len(window):
            print(f"{t // 60:>8} {window.mean():>8.1f} "
                  f"{res_window.mean() / MB:>14.1f}")
    cg = host.mm.cgroup("web")
    print(f"offloaded at end: {cg.offloaded_bytes() / MB:.1f} MB "
          f"(swap {cg.swap_bytes / MB:.0f} / zswap {cg.zswap_bytes / MB:.0f})")


def main() -> None:
    for name, backend in (
        ("baseline (no offloading)", None),
        ("TMO / SSD swap", "ssd"),
        ("TMO / zswap", "zswap"),
    ):
        print(f"running tier: {name} ...")
        summarise(name, run_tier(backend))


if __name__ == "__main__":
    main()
