"""Writing your own offloading controller.

The host accepts any object with a ``poll(host, now)`` method, so new
control policies are ~30 lines. This example builds a *PI controller*
on the PSI error signal — instead of Senpai's formula (a proportional
step with a hard pressure cutoff), it integrates the error between
observed pressure and a setpoint and reclaims accordingly — then races
it against stock Senpai on identical hosts with the A/B harness.

Run:  python examples/custom_controller.py
"""

from repro import Host, HostConfig, Senpai, SenpaiConfig, Workload
from repro.psi import Resource
from repro.sim.ab import ABTest
from repro.workloads import AppProfile
from repro.workloads.access import HeatBands

MB = 1 << 20
GB = 1 << 30


class PiController:
    """Proactive reclaim sized by a PI loop on PSI pressure."""

    def __init__(self, setpoint=0.0005, kp=4e8, ki=4e7,
                 interval_s=6.0, cgroup="app"):
        self.setpoint = setpoint      # target pressure (frac of time)
        self.kp, self.ki = kp, ki     # gains, in bytes per pressure-unit
        self.interval_s = interval_s
        self.cgroup = cgroup
        self._integral = 0.0
        self._last_total = None
        self._next_poll = None

    def poll(self, host, now):
        if self._next_poll is None:
            self._next_poll = now + self.interval_s
            self._last_total = host.psi.some_total(
                self.cgroup, Resource.MEMORY
            )
            return
        if now < self._next_poll - 1e-9:
            return
        self._next_poll = now + self.interval_s

        total = host.psi.some_total(self.cgroup, Resource.MEMORY)
        pressure = (total - self._last_total) / self.interval_s
        self._last_total = total

        error = self.setpoint - pressure   # positive = headroom
        self._integral = max(0.0, self._integral + error * self.interval_s)
        step = int(self.kp * error + self.ki * self._integral)
        if step > 0:
            host.mm.memory_reclaim(self.cgroup, step, now)


PROFILE = AppProfile(
    name="app", size_gb=1.5, anon_frac=0.6,
    bands=HeatBands(0.3, 0.1, 0.1), compress_ratio=3.0,
    cold_never_share=0.2, nthreads=4, cpu_cores=2.0,
)


def build(controller_factory):
    def factory():
        host = Host(HostConfig(ram_gb=3.0, ncpu=16, page_size_bytes=1 * MB,
                               backend="zswap", seed=13, tick_s=2.0))
        host.add_workload(Workload, profile=PROFILE, name="app",
                          size_scale=1.0)
        host.add_controller(controller_factory())
        return host
    return factory


def main() -> None:
    print("racing stock Senpai against a PI controller (30 min) ...")
    report = ABTest(
        control=build(lambda: Senpai(SenpaiConfig())),
        treatment=build(PiController),
    ).run(1800.0)

    for series in ("app/resident_bytes", "app/psi_mem_some_avg10"):
        delta = report.compare(series, window=(900.0, 1800.0))
        print(f"{series:>26}:  senpai={delta.control_mean:12.1f}   "
              f"pi={delta.treatment_mean:12.1f}")

    senpai_off = report.control.mm.cgroup("app").offloaded_bytes()
    pi_off = report.treatment.mm.cgroup("app").offloaded_bytes()
    print(f"\noffloaded: senpai {senpai_off / MB:.0f} MB, "
          f"PI {pi_off / MB:.0f} MB")
    print("both keep pressure near the setpoint; the PI loop trades "
          "Senpai's simplicity for faster convergence — the kind of "
          "experiment the Controller protocol makes a one-file job.")


if __name__ == "__main__":
    main()
