"""Fleet rollout: Section 4.1's savings accounting on a mini-fleet.

Runs one host per application (each with its production backend and
both tax sidecars) under the production Senpai configuration, then
aggregates per-application savings and the fleet-wide savings as a
share of server memory — the paper's 20-32% headline.

Run:  python examples/fleet_rollout.py
"""

from repro import Fleet, HostPlan, HostConfig, SenpaiConfig
from repro.analysis.reporting import format_table

MB = 1 << 20

APPS = ["Feed", "Web", "Cache B", "Ads A", "Ads B", "ML"]


def main() -> None:
    fleet = Fleet(
        base_config=HostConfig(
            ram_gb=4.0, ncpu=16, page_size_bytes=1 * MB, tick_s=2.0,
        ),
        seed=99,
    )
    plans = [
        HostPlan(app=app, count=1, size_scale=0.035,
                 senpai=SenpaiConfig())
        for app in APPS
    ]
    print(f"running {len(plans)} hosts for 1 simulated hour each ...")
    result = fleet.run(plans, duration_s=3600.0)

    rows = [
        (
            r.app,
            r.backend,
            f"{100 * r.app_savings_frac:.1f}",
            f"{100 * r.tax_savings_frac_of_ram:.1f}",
            f"{100 * r.total_savings_frac_of_ram:.1f}",
        )
        for r in result.reports
    ]
    print()
    print(format_table(
        ["app", "backend", "app savings %", "tax savings (of RAM) %",
         "total (of RAM) %"],
        rows,
        title="fleet rollout summary",
    ))
    print(
        f"\nfleet-wide: {100 * result.total_savings_of_ram():.1f}% of "
        f"server memory saved "
        f"({100 * result.tax_savings_of_ram():.1f}% from taxes)"
    )


if __name__ == "__main__":
    main()
