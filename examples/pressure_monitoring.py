"""Using PSI directly: pressure files, SLO monitoring, and a userspace
OOM-killer policy (Section 3.2.4).

PSI serves two ends of the pressure spectrum: `some` detects aggregate
latency impact long before applications visibly suffer (what Senpai
uses), while sustained `full` signals unproductive containers that a
userspace OOM killer (oomd) should act on. This example scripts both
situations against the raw PSI engine — no host simulator involved —
and shows the /proc/pressure-style file rendering.

Run:  python examples/pressure_monitoring.py
"""

from repro.psi import (
    PsiSystem,
    Resource,
    TaskFlags,
    format_pressure_file,
)

RUN = TaskFlags.RUNNING
MEM = TaskFlags.MEMSTALL


def mild_pressure_scenario() -> None:
    """A healthy service with occasional short memory stalls."""
    print("=== scenario 1: mild pressure (Senpai's operating range) ===")
    psi = PsiSystem(ncpu=4)
    psi.add_group("service")
    workers = [psi.add_task(f"w{i}", "service") for i in range(4)]

    now = 0.0
    for second in range(120):
        for worker in workers:
            worker.set_flags(RUN, now)
        # One worker stalls for 5 ms each second: ~0.5% some pressure.
        workers[second % 4].set_flags(MEM, now + 0.9)
        workers[second % 4].set_flags(RUN, now + 0.905)
        now += 1.0
    psi.tick(now)

    print(format_pressure_file(psi.group("service"), Resource.MEMORY, now))
    sample = psi.group("service").sample(Resource.MEMORY, now)
    print(f"-> avg10 some = {100 * sample.some_avg10:.2f}% : "
          "below a 1% threshold, so a Senpai-style controller would "
          "keep reclaiming.\n")


def oomd_scenario() -> None:
    """A container that becomes functionally out of memory."""
    print("=== scenario 2: sustained full pressure (oomd territory) ===")
    psi = PsiSystem(ncpu=4)
    psi.add_group("victim")
    tasks = [psi.add_task(f"t{i}", "victim") for i in range(2)]

    #: An oomd-style policy: kill when full averages >10% over 10s.
    KILL_THRESHOLD = 0.10

    now = 0.0
    killed_at = None
    for second in range(60):
        # Both tasks spend 30% of every second in direct reclaim.
        for task in tasks:
            task.set_flags(MEM, now)
        for task in tasks:
            task.set_flags(RUN, now + 0.3)
        now += 1.0
        sample = psi.group("victim").sample(Resource.MEMORY, now)
        if sample.full_avg10 > KILL_THRESHOLD and killed_at is None:
            killed_at = now

    print(format_pressure_file(psi.group("victim"), Resource.MEMORY, now))
    print(f"-> full avg10 crossed {100 * KILL_THRESHOLD:.0f}% at "
          f"t={killed_at:.0f}s; a userspace OOM killer would terminate "
          "the container long before the kernel OOM killer fires.\n")


def compute_potential_scenario() -> None:
    """`some` vs `full` and the compute-potential cap."""
    print("=== scenario 3: some vs full with a spare runner ===")
    psi = PsiSystem(ncpu=2)
    psi.add_group("mixed")
    stuck = psi.add_task("stuck", "mixed")
    busy = psi.add_task("busy", "mixed")

    stuck.set_flags(MEM, 0.0)   # permanently stalled
    busy.set_flags(RUN, 0.0)    # productive throughout
    psi.tick(30.0)

    group = psi.group("mixed")
    print(f"some total: {group.total(Resource.MEMORY, 'some'):.0f}s "
          "(one task always stalled)")
    print(f"full total: {group.total(Resource.MEMORY, 'full'):.0f}s "
          "(never: the other task kept making progress)")
    print(f"instantaneous productivity loss: "
          f"{100 * group.productivity_loss(Resource.MEMORY):.0f}% "
          "of compute potential")


if __name__ == "__main__":
    mild_pressure_scenario()
    oomd_scenario()
    compute_potential_scenario()
