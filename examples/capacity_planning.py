"""Capacity planning with TMO's observability (Sections 3.3 and 5.1).

Beyond savings, TMO's continuous mild pressure produces an accurate
working-set profile: how much memory a container actually *needs*
(versus what it has allocated). The paper's deployment used exactly
this to right-size containers, and in one case to discover an
application wasting 70% of its memory on file cache from repeatedly
re-extracting a self-extracting binary.

This example runs two containers — a healthy one, and a "wasteful" one
whose file cache is written once and never re-read — under Senpai, then:

1. derives each container's required-vs-allocated memory with the
   WorkingSetProfiler;
2. builds the file-cache miss-ratio curve from refault reuse distances;
3. flags the wasteful container the way the deployment's observability
   did: huge allocated footprint, tiny requirement, cold file cache.

Run:  python examples/capacity_planning.py
"""

from repro import Host, HostConfig, Senpai, SenpaiConfig, Workload
from repro.analysis import WorkingSetProfiler, miss_ratio_curve
from repro.workloads import AppProfile
from repro.workloads.access import HeatBands

MB = 1 << 20
GB = 1 << 30

HEALTHY = AppProfile(
    name="healthy-service",
    size_gb=600 * MB / GB,
    anon_frac=0.6,
    bands=HeatBands(0.55, 0.10, 0.10),  # mostly hot
    compress_ratio=3.0,
    nthreads=2,
    cpu_cores=1.0,
)

#: The self-extracting-binary pattern: a huge file set, written once,
#: essentially never re-read — pure page-cache waste.
WASTEFUL = AppProfile(
    name="self-extractor",
    size_gb=900 * MB / GB,
    anon_frac=0.25,
    bands=HeatBands(0.05, 0.02, 0.03),  # 90% cold
    compress_ratio=3.0,
    file_preload=True,
    dirty_file_frac=0.3,
    nthreads=2,
    cpu_cores=1.0,
    cold_never_share=0.9,
)


def main() -> None:
    host = Host(HostConfig(ram_gb=2.0, page_size_bytes=1 * MB,
                           backend="zswap", ncpu=8, seed=31))
    host.add_workload(Workload, profile=HEALTHY, name="healthy")
    host.add_workload(Workload, profile=WASTEFUL, name="wasteful")
    host.add_controller(
        Senpai(SenpaiConfig(reclaim_ratio=0.003, max_step_frac=0.02))
    )

    profilers = {
        name: WorkingSetProfiler(pressure_target=1.0)
        for name in ("healthy", "wasteful")
    }

    print("profiling 45 simulated minutes under Senpai ...\n")
    end = 2700.0
    while host.clock.now < end:
        host.run(30.0)
        for name, profiler in profilers.items():
            profiler.record_from_host(host, name, host.clock.now)

    print(f"{'container':>12} {'allocated':>12} {'required':>12} "
          f"{'overprovisioned':>16}")
    flagged = []
    for name, profiler in profilers.items():
        estimate = profiler.estimate()
        cg = host.mm.cgroup(name)
        allocated = cg.resident_bytes + cg.offloaded_bytes() + (
            len(cg.shadow) * host.mm.page_size_bytes
        )
        print(f"{name:>12} {allocated / MB:>10.0f}MB "
              f"{estimate.required_bytes / MB:>10.0f}MB "
              f"{100 * (1 - estimate.required_bytes / allocated):>15.0f}%")
        if estimate.required_bytes < 0.5 * allocated:
            flagged.append(name)

    print("\nfile-cache miss-ratio curve (wasteful container):")
    curve = miss_ratio_curve(host.mm.cgroup("wasteful"))
    for cache_pages, ratio in curve[:6]:
        bar = "#" * int(40 * ratio)
        print(f"  cache {cache_pages:>6} pages  miss {ratio:5.1%}  {bar}")
    if not curve:
        print("  (no refaults at all: the evicted file cache was never "
              "re-read — the clearest waste signal there is)")

    print(f"\nflagged for right-sizing: {flagged}")
    print("the 'self-extractor' fix in the paper (extract ahead of "
          "time) recovered 70% of that app's memory.")


if __name__ == "__main__":
    main()
