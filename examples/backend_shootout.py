"""Replay one workload's exact accesses against every offload tier.

Demonstrates two library features together:

* **trace record/replay** (`repro.workloads.trace`) — pin a workload's
  page-touch sequence so different memory systems see literally the
  same load;
* the full **backend spectrum** — CXL, NVM, zswap, and two SSD
  generations — the heterogeneity TMO is built to absorb (Sections 2.5
  and 5.2).

Run:  python examples/backend_shootout.py
"""

import dataclasses

from repro import Host, HostConfig
from repro.analysis.reporting import format_table
from repro.workloads import APP_CATALOG, RecordingWorkload, ReplayWorkload

MB = 1 << 20
N_TICKS = 300
TICK_S = 2.0
SEED = 77

PROFILE = dataclasses.replace(APP_CATALOG["ML"], cold_never_share=0.1)


def make_host(**overrides) -> Host:
    config = dict(ram_gb=4.0, ncpu=16, page_size_bytes=1 * MB, seed=SEED,
                  tick_s=TICK_S)
    config.update(overrides)
    return Host(HostConfig(**config))


def main() -> None:
    print("recording a 10-minute ML-serving trace ...")
    recorder_host = make_host(backend=None)
    recorder_host.mm.create_cgroup("app",
                                   compressibility=PROFILE.compress_ratio)
    recorder = RecordingWorkload(recorder_host.mm, PROFILE, "app",
                                 seed=SEED)
    recorder.start(0.0, size_scale=0.05)
    for i in range(N_TICKS):
        recorder.tick(i * TICK_S, TICK_S)
    trace = recorder.trace
    print(f"  {len(trace)} ticks, {trace.total_touches} touches recorded")

    rows = []
    for label, overrides in (
        ("cxl", dict(backend="cxl")),
        ("nvm", dict(backend="nvm")),
        ("zswap", dict(backend="zswap")),
        ("ssd (fast, C)", dict(backend="ssd", ssd_model="C")),
        ("ssd (slow, B)", dict(backend="ssd", ssd_model="B")),
    ):
        host = make_host(**overrides)
        host.mm.create_cgroup("app",
                              compressibility=PROFILE.compress_ratio)
        replayer = ReplayWorkload(host.mm, trace, "app")
        replayer.start(0.0)
        for i in range(N_TICKS):
            now = i * TICK_S
            replayer.tick(now, TICK_S)
            if i % 3 == 0:
                host.mm.memory_reclaim("app", 8 * MB, now)
            host.mm.on_tick(now + TICK_S, TICK_S)
        cg = host.mm.cgroup("app")
        stall = host.swap_backend.stats.read_stall_seconds
        rows.append((
            label,
            f"{cg.offloaded_bytes() / MB:.0f}",
            str(cg.vmstat.pswpin),
            f"{1e3 * stall:.1f}",
        ))

    print()
    print(format_table(
        ["backend", "offloaded (MB)", "swap-ins", "fault stall (ms)"],
        rows,
        title="identical accesses, five memory systems",
    ))
    print("\nsame pages offloaded, same faults — the stall bill is "
          "purely the device, which is why TMO keys its control "
          "signal (PSI) on stall time rather than event counts.")


if __name__ == "__main__":
    main()
