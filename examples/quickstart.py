"""Quickstart: transparent memory offloading on one host.

Builds a simulated 4 GB server, runs the Feed application on it with a
zswap backend, attaches the Senpai controller with the production
configuration, simulates half an hour, and reports what got offloaded
and at what pressure cost.

Run:  python examples/quickstart.py
"""

from repro import Host, HostConfig, Senpai, SenpaiConfig, Workload
from repro.core.fleet import cgroup_memory_savings
from repro.psi import Resource, format_pressure_file
from repro.workloads import APP_CATALOG

MB = 1 << 20


def main() -> None:
    # A small host: 4 GB of DRAM modelled at 1 MiB page granularity.
    host = Host(
        HostConfig(ram_gb=4.0, ncpu=16, page_size_bytes=1 * MB,
                   backend="zswap", seed=7)
    )

    # Run Feed (Figure 2's example app: 50/8/12 recency, 30% cold) at
    # 5% of its production footprint.
    host.add_workload(
        Workload, profile=APP_CATALOG["Feed"], name="feed",
        size_scale=0.05,
    )

    # Attach Senpai with the paper's production settings: poll every
    # 6 s, reclaim_ratio 0.0005, PSI threshold 0.1%.
    host.add_controller(Senpai(SenpaiConfig()))

    print("running 30 minutes of simulated time...")
    host.run(1800.0)

    cg = host.mm.cgroup("feed")
    stats = cgroup_memory_savings(host.mm, "feed")
    print(f"\nresident:      {cg.resident_bytes / MB:8.1f} MB")
    print(f"zswap logical: {cg.zswap_bytes / MB:8.1f} MB "
          f"(pool: {host.mm.zswap_pool_bytes / MB:.1f} MB physical)")
    print(f"file evicted:  {stats['saved_file_bytes'] / MB:8.1f} MB")
    print(f"net savings:   {100 * stats['savings_frac']:8.1f} % "
          "of the app's footprint")

    print("\nmemory pressure (cgroup 'feed'):")
    print(format_pressure_file(
        host.psi.group("feed"), Resource.MEMORY, host.clock.now
    ))
    print("\nio pressure (cgroup 'feed'):")
    print(format_pressure_file(
        host.psi.group("feed"), Resource.IO, host.clock.now
    ))

    vm = cg.vmstat
    print(f"\nevents: {vm.pswpout} swap-outs, {vm.pswpin} swap-ins, "
          f"{vm.workingset_refault} refaults, "
          f"{vm.workingset_evict} file evictions")


if __name__ == "__main__":
    main()
