"""Control-plane smoke: boot fleetd, roll a fleet forward and back.

Starts the fleetd daemon on a private Unix socket, registers three
hosts, then exercises both legs of the guarded-rollout state machine
(docs/RESILIENCE.md, "Control plane"):

* a healthy rollout to the auto-tuner that passes every wave's health
  gate and commits, and
* a deliberately bad policy (unreachable pressure target, huge reclaim
  step) whose canary trips the gate — the engine auto-rolls the canary
  back from its pre-apply checkpoint and nobody is quarantined, and
* the read-only query surface against the live daemon: ``metrics``
  (host → region → fleet rollup envelope, validated on read, NaN-free)
  and ``top`` (hosts ranked by a signal), with regions on the
  registered hosts.

The envelopes are written next to the working directory (CI uploads
them as artifacts):

    fleetd-rollout-pass.json
    fleetd-rollout-tripped.json
    fleetd-rollup-fleet.json

Run:  python examples/fleetd_smoke.py
"""

import json
import sys
import tempfile

from repro.fleetd.client import FleetdClient
from repro.fleetd.engine import FleetdConfig, FleetdEngine
from repro.fleetd.rollout import RolloutConfig, parse_rollout_result
from repro.fleetd.rollup import parse_fleet_rollup
from repro.fleetd.server import FleetdServer
from repro.sim.host import HostConfig

MB = 1 << 20

#: A policy the health gate must reject: an unreachable pressure
#: target with an enormous, rapid reclaim step, so the canary's PSI
#: and refault rate blow past the gate's baseline-anchored limits
#: within the soak window (same shape as the chaos storm's
#: ``repro.fleetd.chaos.BAD_POLICY``).
BAD_POLICY = {
    "kind": "senpai",
    "params": {
        "psi_threshold": 10.0,
        "reclaim_ratio": 0.5,
        "max_step_frac": 0.5,
        "interval_s": 2.0,
    },
}


def drive_to_terminal(client, rollout_id, max_ticks=2000):
    """Advance simulated time until the rollout reaches a terminal
    state — the `run` verb keeps the smoke deterministic (no wall
    clock, no polling)."""
    spent = 0
    result = client.rollout_status(rollout_id)
    while result["status"] in ("pending", "running"):
        if spent >= max_ticks:
            raise RuntimeError(
                f"rollout {rollout_id} still {result['status']} "
                f"after {spent} ticks"
            )
        client.run_ticks(50)
        spent += 50
        result = client.rollout_status(rollout_id)
    return result


def write_artifact(path, result):
    parse_rollout_result(result)  # validate the envelope before archiving
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"  wrote {path}")


def main() -> int:
    workdir = tempfile.mkdtemp(prefix="fleetd-smoke-")
    engine = FleetdEngine(FleetdConfig(
        seed=11,
        base_config=HostConfig(
            ram_gb=0.25, page_size_bytes=1 * MB, ncpu=4,
        ),
        rollout=RolloutConfig(
            canary_frac=0.34, wave_frac=1.0,
            baseline_s=20.0, soak_s=20.0,
        ),
        checkpoint_every_s=15.0,
        spool_dir=f"{workdir}/spool",
    ))
    server = FleetdServer(
        engine, f"{workdir}/fleetd.sock", tick_interval_s=5.0,
    )
    server.start()
    client = FleetdClient(server.socket_path)
    try:
        print(f"fleetd up on {server.socket_path}")
        regions = ["east", "west", "east"]
        for i, app in enumerate(["Feed", "Web", "Feed"]):
            client.register(
                f"h{i}", app, size_scale=0.003, region=regions[i]
            )
        print("registered 3 hosts across 2 regions; "
              "warming the fleet ...")
        client.run_ticks(25)

        print("rollout 1: autotune across the fleet (guarded waves)")
        good = drive_to_terminal(
            client, client.rollout({"kind": "autotune", "params": {}})
        )
        assert good["status"] == "succeeded", good
        assert all(w["passed"] for w in good["waves"])
        write_artifact("fleetd-rollout-pass.json", good)
        print(f"  succeeded in {len(good['waves'])} wave(s)")

        print("rollout 2: a bad policy the health gate must catch")
        bad = drive_to_terminal(client, client.rollout(BAD_POLICY))
        assert bad["status"] == "rolled_back", bad
        assert len(bad["waves"]) == 1  # only the canary saw it
        write_artifact("fleetd-rollout-tripped.json", bad)
        print(f"  gate tripped: {bad['rollback_reason']}")

        print("query surface: metrics + top against the live daemon")
        rollup = client.metrics(window_s=30.0)  # validated on read
        parse_fleet_rollup(rollup)  # and again before archiving
        assert rollup["fleet"]["hosts"] == 3, rollup["fleet"]
        assert set(rollup["regions"]) == {"east", "west"}, (
            rollup["regions"]
        )
        assert rollup["fleet"]["signals"]["psi_mem_some"]["samples"] \
            > 0, rollup["fleet"]["signals"]
        with open("fleetd-rollup-fleet.json", "w",
                  encoding="utf-8") as fh:
            json.dump(rollup, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print("  wrote fleetd-rollup-fleet.json")
        top = client.top("psi_mem_some", n=3, window_s=30.0)
        assert len(top["hosts"]) == 3, top
        leader = top["hosts"][0]
        print(f"  top psi_mem_some: {leader['host_id']} "
              f"({leader['region']}) mean={leader['mean']}")

        status = client.status()
        committed = status["committed_policy"]
        assert committed["kind"] == "autotune", committed
        quarantined = [
            h["host_id"] for h in status["hosts"] if h["quarantined"]
        ]
        assert not quarantined, quarantined
        print("fleet converged on the committed policy "
              f"({committed['kind']}), zero hosts quarantined")

        client.stop()
        print("fleetd stopped cleanly")
        return 0
    finally:
        server.stop()
        engine.close()


if __name__ == "__main__":
    sys.exit(main())
