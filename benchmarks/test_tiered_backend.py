"""Ablation (Section 5.2): a kernel-managed backend hierarchy.

The paper's future work: instead of manually assigning each app to
zswap *or* SSD, let the kernel place warmer/compressible pages in the
compressed pool and colder/incompressible pages on SSD. We run a host
carrying both a compressible app (Feed, 3.5x) and a quantised-model app
(ML, 1.35x) under each backend and compare net DRAM savings.

Shape: the tiered hierarchy matches or beats both single backends —
it stops burning pool DRAM on ML's incompressible pages while keeping
zswap's fast faults for Feed's warm-cold band.
"""

import pytest

from repro.backends.tiered import TIER_SSD, TIER_ZSWAP
from repro.core.fleet import cgroup_memory_savings
from repro.core.senpai import Senpai, SenpaiConfig
from repro.workloads.apps import APP_CATALOG
from repro.workloads.base import Workload

from bench_common import bench_host, print_figure

MB = 1 << 20
DURATION_S = 3600.0
SENPAI = SenpaiConfig(reclaim_ratio=0.002, max_step_frac=0.02,
                      write_limit_mb_s=None)


def run_backend(backend: str):
    host = bench_host(backend=backend, ram_gb=6.0, tick_s=2.0)
    host.add_workload(
        Workload, profile=APP_CATALOG["Feed"], name="feed",
        size_scale=0.05,
    )
    host.add_workload(
        Workload, profile=APP_CATALOG["ML"], name="ml",
        size_scale=0.05,
    )
    host.add_controller(Senpai(SENPAI))
    host.run(DURATION_S)
    feed = cgroup_memory_savings(host.mm, "feed")
    ml = cgroup_memory_savings(host.mm, "ml")
    result = {
        "feed_savings": feed["savings_frac"],
        "ml_savings": ml["savings_frac"],
        "total_saved_mb": (feed["saved_bytes"] + ml["saved_bytes"]) / MB,
        "pool_mb": host.mm.zswap_pool_bytes / MB,
    }
    if backend == "tiered":
        result["tier_counts"] = host.swap_backend.tier_counts()
        result["ml_on_ssd"] = _tier_share(host, "ml", TIER_SSD)
        result["feed_on_zswap"] = _tier_share(host, "feed", TIER_ZSWAP)
    return result


def _tier_share(host, cgroup: str, tier: str) -> float:
    """Share of a cgroup's offloaded pages living in ``tier``."""
    backend = host.swap_backend
    placed = [
        backend.tier_of(p.page_id)
        for p in host.mm.pages(cgroup)
        if backend.tier_of(p.page_id) is not None
    ]
    if not placed:
        return 0.0
    return sum(1 for t in placed if t == tier) / len(placed)


def run_experiment():
    return {
        backend: run_backend(backend)
        for backend in ("zswap", "ssd", "tiered")
    }


def test_tiered_backend_ablation(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        (
            backend,
            100 * r["feed_savings"],
            100 * r["ml_savings"],
            r["total_saved_mb"],
            r["pool_mb"],
        )
        for backend, r in results.items()
    ]
    print_figure(
        "Section 5.2 ablation — backend hierarchy",
        ["backend", "Feed savings %", "ML savings %",
         "total saved (MB)", "pool (MB)"],
        rows,
    )

    tiered = results["tiered"]
    # Placement sanity: ML's incompressible pages went to SSD, Feed's
    # compressible warm-cold band mostly to zswap.
    assert tiered["ml_on_ssd"] > 0.95
    assert tiered["feed_on_zswap"] > 0.5
    # The hierarchy beats zswap-only (which wastes pool DRAM on ML).
    assert tiered["total_saved_mb"] > results["zswap"]["total_saved_mb"]
    # And at least matches ssd-only overall.
    assert tiered["total_saved_mb"] > 0.9 * results["ssd"]["total_saved_mb"]
    # zswap-only is particularly bad for ML specifically.
    assert tiered["ml_savings"] > results["zswap"]["ml_savings"]
