"""Backend shootout: one workload, every offload tier.

Sections 2.5 and 5.2 frame the heterogeneity problem: offload backends
span three orders of magnitude of fault latency (CXL ~0.4 us/4 KiB,
NVM ~2 us, zswap ~30 us, SSDs 0.1-4 ms). This bench replays the *same*
recorded access trace against each backend under identical Senpai
reclaim and compares the stall bill per offloaded byte.

Shape: the stall-per-GB ranking follows the device latency ranking
(CXL < NVM < zswap << fast SSD < slow SSD), while fault *counts* stay
identical across tiers — the trace pins the accesses, so the entire
difference is the device.
"""

import dataclasses

import pytest

from repro.workloads.apps import APP_CATALOG
from repro.workloads.trace import RecordingWorkload, ReplayWorkload

from bench_common import BENCH_SEED, bench_host, print_figure

MB = 1 << 20
N_TICKS = 600
TICK_S = 2.0

#: Incompressible-ish data so zswap gets no free ride from ratio.
PROFILE = dataclasses.replace(
    APP_CATALOG["ML"], cold_never_share=0.10,
)

BACKENDS = (
    ("cxl", {}),
    ("nvm", {}),
    ("zswap", {}),
    ("ssd-C", {"backend": "ssd", "ssd_model": "C"}),
    ("ssd-B", {"backend": "ssd", "ssd_model": "B"}),
)

RECLAIM_EVERY_TICKS = 3
RECLAIM_STEP_MB = 8


def record_trace():
    host = bench_host(backend=None, tick_s=TICK_S)
    host.mm.create_cgroup("app", compressibility=PROFILE.compress_ratio)
    recorder = RecordingWorkload(
        host.mm, PROFILE, "app", seed=BENCH_SEED
    )
    recorder.start(0.0, size_scale=0.05)
    for i in range(N_TICKS):
        recorder.tick(i * TICK_S, TICK_S)
    return recorder.trace


def run_backend(trace, label, overrides):
    config = dict(backend=label) if not overrides else dict(overrides)
    host = bench_host(tick_s=TICK_S, **config)
    host.mm.create_cgroup("app", compressibility=PROFILE.compress_ratio)
    replayer = ReplayWorkload(host.mm, trace, "app")
    replayer.start(0.0)
    host.psi.add_group("app")
    stall_s = 0.0
    for i in range(N_TICKS):
        now = i * TICK_S
        tick = replayer.tick(now, TICK_S)
        stall_s += tick.total_stall_s
        # Identical, deterministic reclaim cadence on every backend.
        if i % RECLAIM_EVERY_TICKS == 0:
            host.mm.memory_reclaim("app", RECLAIM_STEP_MB * MB, now)
        host.mm.on_tick(now + TICK_S, TICK_S)
    cg = host.mm.cgroup("app")
    backend = host.swap_backend
    # Anon-fault stall only (backend reads), excluding the filesystem
    # reads that are identical across tiers.
    anon_stall_s = backend.stats.read_stall_seconds
    if hasattr(backend, "zswap"):  # tiered: sum the tiers
        anon_stall_s = (
            backend.zswap.stats.read_stall_seconds
            + backend.ssd.stats.read_stall_seconds
        )
    return {
        "offloaded_mb": cg.offloaded_bytes() / MB,
        "stall_s": stall_s,
        "anon_stall_s": anon_stall_s,
        "swapins": cg.vmstat.pswpin,
        "stall_ms_per_swapin": (
            1e3 * anon_stall_s / cg.vmstat.pswpin
            if cg.vmstat.pswpin else 0.0
        ),
        "dropped": replayer.dropped_touches,
    }


def run_experiment():
    trace = record_trace()
    return {
        label: run_backend(trace, label, overrides)
        for label, overrides in BACKENDS
    }


def test_backend_shootout(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        (
            label,
            r["offloaded_mb"],
            r["swapins"],
            r["stall_s"],
            r["stall_ms_per_swapin"],
        )
        for label, r in results.items()
    ]
    print_figure(
        "Backend shootout — identical trace, identical reclaim",
        ["backend", "offloaded (MB)", "swap-ins", "stall (s)",
         "stall ms/swap-in"],
        rows,
    )

    # The trace pinned the workload: every tier replays cleanly and
    # faults the same pages back the same number of times.
    swapin_counts = {r["swapins"] for r in results.values()}
    for r in results.values():
        assert r["dropped"] == 0
    assert max(swapin_counts) - min(swapin_counts) <= max(swapin_counts) * 0.05

    # Stall cost ranking follows device latency (Figure 5 + §5.2).
    stall = {label: r["stall_ms_per_swapin"] for label, r in results.items()}
    assert stall["cxl"] < stall["nvm"] < stall["zswap"]
    assert stall["zswap"] < stall["ssd-C"] < stall["ssd-B"]
    # Two-plus orders of magnitude between the extremes.
    assert stall["ssd-B"] / max(1e-9, stall["cxl"]) > 100
