"""Ablation (Section 4.3's argument, head to head): a statically-profiled
g-swap target vs PSI-driven Senpai across heterogeneous devices.

g-swap's promotion-rate target comes from offline profiling against one
device. Deployed fleet-wide, the same target meets SSDs an order of
magnitude slower (Figure 5) — where each promotion costs far more stall
— and SSDs faster, where the target needlessly caps savings. PSI folds
the device cost into the signal itself, so one Senpai config adapts.

Shape to reproduce: with the target profiled on the fast SSD (C),
deploying it unchanged on the slow SSD (B) stalls the workload several
times harder per unit of offloaded memory than Senpai does on the same
device; Senpai's per-device stall cost stays roughly flat.
"""

import pytest

from repro.core.gswap import GSwapConfig, GSwapController
from repro.core.senpai import Senpai, SenpaiConfig
from repro.psi.types import Resource
from repro.workloads.apps import APP_CATALOG
from repro.workloads.base import Workload

from bench_common import bench_host, print_figure

MB = 1 << 20
DURATION_S = 3600.0

#: The statically profiled target: tuned so the fast SSD (C) tier is
#: healthy. Deployed unchanged on B — the heterogeneity pitfall.
PROFILED_TARGET = 0.5  # promotions/second

SENPAI = SenpaiConfig(reclaim_ratio=0.002, max_step_frac=0.02,
                      write_limit_mb_s=None)


def run_tier(controller_name: str, ssd_model: str):
    host = bench_host(backend="ssd", ssd_model=ssd_model, tick_s=2.0)
    host.add_workload(
        Workload, profile=APP_CATALOG["Ads B"], name="app",
        size_scale=0.05,
    )
    if controller_name == "gswap":
        host.add_controller(GSwapController(GSwapConfig(
            target_promotion_rate=PROFILED_TARGET,
            max_step_frac=0.02,
        )))
    else:
        host.add_controller(Senpai(SENPAI))
    host.run(DURATION_S)
    cg = host.mm.cgroup("app")
    group = host.psi.group("app")
    mem = group.sample(Resource.MEMORY, host.clock.now)
    offloaded_mb = cg.offloaded_bytes() / MB
    stall_s = group.total(Resource.MEMORY, "some")
    return {
        "offloaded_mb": offloaded_mb,
        "stall_s": stall_s,
        "stall_per_gb": stall_s / max(1e-9, offloaded_mb / 1024),
        "psi_mem": mem.some_avg300,
        "promo_rate": cg.vmstat.pswpin / DURATION_S,
    }


def run_experiment():
    out = {}
    for controller in ("gswap", "senpai"):
        for model in ("C", "B"):
            out[(controller, model)] = run_tier(controller, model)
    return out


def test_gswap_vs_senpai(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        (
            controller,
            model,
            r["offloaded_mb"],
            r["promo_rate"],
            r["stall_s"],
            r["stall_per_gb"],
        )
        for (controller, model), r in results.items()
    ]
    print_figure(
        "Section 4.3 ablation — static promotion target vs PSI",
        ["controller", "ssd", "offloaded (MB)", "promo/s",
         "mem stall (s)", "stall s/GB offloaded"],
        rows,
    )

    gswap_fast = results[("gswap", "C")]
    gswap_slow = results[("gswap", "B")]
    senpai_fast = results[("senpai", "C")]
    senpai_slow = results[("senpai", "B")]

    # The static target was healthy where it was profiled...
    assert gswap_fast["offloaded_mb"] > 0
    # ...but on the slow device the same promotion budget buys far more
    # stall per byte offloaded (the device cost g-swap cannot see).
    assert gswap_slow["stall_per_gb"] > 2.0 * gswap_fast["stall_per_gb"]
    # Senpai adapts: it offloads less aggressively on the slow device...
    assert senpai_slow["offloaded_mb"] <= senpai_fast["offloaded_mb"] * 1.05
    # ...keeping its stall burden on the slow device well below the
    # static-target controller's.
    assert senpai_slow["stall_s"] < gswap_slow["stall_s"]
    # And senpai's pressure stays in its operating range on both devices.
    for key in (("senpai", "C"), ("senpai", "B")):
        assert results[key]["psi_mem"] < 0.01
