"""Microbenchmarks of the substrate's hot paths.

Not a paper figure — these time the primitives every experiment leans
on, so performance regressions in the simulator itself are visible.
The paper-relevant one is the PSI transition cost: Section 3.2.2 notes
PSI's only cost is scheduling-path bookkeeping and that it is
negligible; here that path is ~microseconds per transition in pure
Python.
"""

import pytest

from repro.backends.base import IoKind
from repro.backends.ssd import make_ssd_device
from repro.backends.zswap import ZswapBackend
from repro.kernel.lru import LruSet
from repro.kernel.page import Page, PageKind
from repro.kernel.shadow import ShadowMap
from repro.backends.filesystem import FilesystemBackend
from repro.kernel.mm import MemoryManager
from repro.psi.tracker import PsiSystem
from repro.psi.types import TaskFlags
from repro.sim.rng import derive_rng

from bench_common import BENCH_SEED

PAGE = 256 * 1024
MB = 1 << 20


def make_mm(ram_mb=256):
    return MemoryManager(
        ram_bytes=ram_mb * MB,
        page_size_bytes=PAGE,
        fs=FilesystemBackend("C", derive_rng(BENCH_SEED, "microbench:fs")),
        swap_backend=ZswapBackend(derive_rng(BENCH_SEED, "microbench:zswap")),
    )


def test_psi_transition_throughput(benchmark):
    psi = PsiSystem(ncpu=8)
    psi.add_group("g")
    tasks = [psi.add_task(f"t{i}", "g") for i in range(8)]
    state = {"now": 0.0}

    def transitions():
        now = state["now"]
        for i, task in enumerate(tasks):
            now += 1e-4
            task.set_flags(
                TaskFlags.MEMSTALL if i % 2 else TaskFlags.RUNNING, now
            )
        state["now"] = now

    benchmark(transitions)


def test_lru_touch_throughput(benchmark):
    lruset = LruSet(PageKind.FILE, "g")
    pages = [
        Page(page_id=i, kind=PageKind.FILE, cgroup="g")
        for i in range(4096)
    ]
    for page in pages:
        lruset.insert_new(page)
    rng = derive_rng(BENCH_SEED, "microbench:lru-order")
    order = rng.integers(0, len(pages), size=512)

    def touches():
        for i in order:
            lruset.touch(pages[i])

    benchmark(touches)


def test_reclaim_scan_throughput(benchmark):
    mm = make_mm(ram_mb=1024)
    mm.create_cgroup("app")
    mm.alloc_anon("app", 2000, now=0.0)

    def reclaim_and_restore():
        outcome = mm.memory_reclaim("app", 64 * PAGE, now=1.0)
        # Restore so each round reclaims from the same population.
        for page in mm.pages("app"):
            if not page.resident:
                mm.touch(page, now=2.0)
        return outcome

    benchmark(reclaim_and_restore)


def test_shadow_refault_check_throughput(benchmark):
    shadow = ShadowMap()
    for pid in range(10_000):
        shadow.record_eviction(pid)

    def checks():
        for pid in range(0, 10_000, 16):
            shadow.reuse_distance(pid)

    benchmark(checks)


def test_zswap_store_load_throughput(benchmark):
    backend = ZswapBackend(
        derive_rng(BENCH_SEED, "microbench:zswap-roundtrip")
    )

    def roundtrip():
        for i in range(64):
            backend.store(PAGE, 3.0, now=0.0, page_id=i)
        for i in range(64):
            backend.load(PAGE, 3.0, now=1.0, page_id=i)
            backend.free(PAGE, 3.0, page_id=i)

    benchmark(roundtrip)


def test_device_issue_throughput(benchmark):
    device = make_ssd_device(
        "C", derive_rng(BENCH_SEED, "microbench:device-issue")
    )

    def issues():
        for _ in range(256):
            device.issue(IoKind.READ)
        device.on_tick(0.0, dt=0.1)

    benchmark(issues)


def test_host_tick_throughput(benchmark):
    """End-to-end cost of one simulated second on a bench-sized host."""
    from repro.core.senpai import Senpai, SenpaiConfig
    from repro.workloads.apps import APP_CATALOG
    from repro.workloads.base import Workload

    from bench_common import add_app, bench_host

    host = bench_host(backend="zswap")
    add_app(host, "Feed", size_scale=0.05)
    host.add_controller(Senpai(SenpaiConfig()))
    host.run(30.0)  # warm up

    benchmark(host.step)
