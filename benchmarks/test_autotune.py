"""Ablation (§3.3 future work): online tuning of Senpai's parameters.

The paper ships one global config because tuning per workload by hand
does not scale, and names automated/online tuning as future work. The
AIMD tuner adapts each container's reclaim ratio inside the unchanged
pressure contract. Shape to demonstrate:

* on a tolerant (batch-like) workload, the tuner converges to a much
  higher ratio and reaches the savings plateau far sooner than the
  fixed production trickle;
* on a latency-sensitive (hot) workload, it backs itself down and ends
  no more aggressive than the fixed config — pressure stays bounded
  for both.
"""

import pytest

from repro.core.autotune import AutoTuneConfig, AutoTuneSenpai
from repro.core.senpai import Senpai, SenpaiConfig
from repro.psi.types import Resource
from repro.workloads.access import HeatBands
from repro.workloads.apps import AppProfile

from bench_common import bench_host, print_figure
from repro.workloads.base import Workload

MB = 1 << 20
GB = 1 << 30
DURATION_S = 3600.0


def profile(hot: float) -> AppProfile:
    return AppProfile(
        name="app", size_gb=2.0, anon_frac=0.65,
        bands=HeatBands(hot, 0.05, 0.05),
        compress_ratio=3.0, cold_never_share=0.2,
        nthreads=4, cpu_cores=2.0,
    )


def run_tier(kind: str, hot: float):
    host = bench_host(backend="zswap", ram_gb=4.0, tick_s=2.0)
    host.add_workload(
        Workload, profile=profile(hot), name="app", size_scale=1.0
    )
    if kind == "fixed":
        controller = Senpai(SenpaiConfig())
    else:
        controller = AutoTuneSenpai(AutoTuneConfig())
    host.add_controller(controller)
    host.run(DURATION_S)
    cg = host.mm.cgroup("app")
    sample = host.psi.group("app").sample(
        Resource.MEMORY, host.clock.now
    )
    ratio_series = host.metrics.series("app/senpai_ratio")
    return {
        "offloaded_mb": cg.offloaded_bytes() / MB,
        "psi_mem": sample.some_avg300,
        "final_ratio": (
            ratio_series.last() if len(ratio_series)
            else SenpaiConfig().reclaim_ratio
        ),
    }


def run_experiment():
    return {
        ("batch", "fixed"): run_tier("fixed", hot=0.20),
        ("batch", "autotune"): run_tier("autotune", hot=0.20),
        ("sensitive", "fixed"): run_tier("fixed", hot=0.85),
        ("sensitive", "autotune"): run_tier("autotune", hot=0.85),
    }


def test_autotune_ablation(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        (
            workload,
            controller,
            r["offloaded_mb"],
            r["final_ratio"],
            100 * r["psi_mem"],
        )
        for (workload, controller), r in results.items()
    ]
    print_figure(
        "Section 3.3 future work — online parameter tuning",
        ["workload", "controller", "offloaded (MB)",
         "final reclaim ratio", "PSI mem %"],
        rows,
    )

    batch_fixed = results[("batch", "fixed")]
    batch_tuned = results[("batch", "autotune")]
    hot_fixed = results[("sensitive", "fixed")]
    hot_tuned = results[("sensitive", "autotune")]

    # Tolerant workload: the tuner unlocks substantially more savings
    # in the same wall time.
    assert batch_tuned["offloaded_mb"] > 1.3 * batch_fixed["offloaded_mb"]
    assert batch_tuned["final_ratio"] > 2 * SenpaiConfig().reclaim_ratio
    # Sensitive workload: tuning does not blow the pressure contract.
    assert hot_tuned["psi_mem"] < 0.01
    assert hot_fixed["psi_mem"] < 0.01
    # And the tuner's sensitive-workload ratio ends below its
    # batch-workload ratio: it discovered the SLO difference online —
    # exactly what the paper's per-SLO configs would hand-encode.
    assert hot_tuned["final_ratio"] < batch_tuned["final_ratio"]
