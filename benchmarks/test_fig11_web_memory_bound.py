"""Figure 11: Web on memory-bound hosts — RPS recovery and memory
savings across three phases (offloading disabled / SSD / zswap).

Shape to reproduce: the baseline tier self-regulates as it approaches
its memory limit, losing >20% RPS over a couple of hours; once TMO is
enabled, resident memory drops and the RPS decline is eliminated.
Because Web's data compresses 4x and Web is sensitive to memory-access
slowdown, the compressed-memory backend saves substantially more of
Web's memory (~13% at peak) than the SSD backend (~4%).

The paper runs one tier through three phases; we run three identically
seeded tiers, one per phase, which is equivalent for an A/B comparison
on a deterministic simulator.
"""

import pytest

from repro.core.senpai import SenpaiConfig
from repro.workloads.web import WebConfig

from bench_common import add_app, add_senpai, bench_host, print_figure

DURATION_S = 7200.0  # two hours per tier
MB = 1 << 20

#: Sized so the host starts ~80% full and request-driven growth pushes
#: it into the self-regulation regime within the run.
WEB_SCALE = 0.066
WEB_CONFIG = WebConfig(anon_growth_frac_per_hour=0.35)

SENPAI = SenpaiConfig(reclaim_ratio=0.002, max_step_frac=0.02)


def run_tier(backend):
    host = bench_host(backend=backend, tick_s=2.0)
    add_app(host, "Web", size_scale=WEB_SCALE, web_config=WEB_CONFIG)
    if backend is not None:
        add_senpai(host, SENPAI)
    host.run(DURATION_S)
    rps = host.metrics.series("app/rps")
    resident = host.metrics.series("app/resident_bytes")
    cg = host.mm.cgroup("app")
    return {
        "rps_start": rps.window(0, 1200).mean(),
        "rps_end": rps.window(DURATION_S - 1200, DURATION_S).mean(),
        "resident_end": resident.window(
            DURATION_S - 1200, DURATION_S
        ).mean(),
        "offloaded": cg.offloaded_bytes(),
        "saved": (
            cg.swap_bytes
            + max(0, cg.zswap_bytes - host.mm.zswap_pool_bytes)
            + len(cg.shadow) * host.mm.page_size_bytes
        ),
        "baseline_footprint": cg.resident_bytes + cg.offloaded_bytes(),
    }


def run_experiment():
    return {
        "baseline": run_tier(None),
        "TMO/ssd": run_tier("ssd"),
        "TMO/zswap": run_tier("zswap"),
    }


def test_fig11_web_memory_bound(benchmark):
    tiers = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        (
            name,
            t["rps_start"],
            t["rps_end"],
            100 * (t["rps_end"] / t["rps_start"] - 1.0),
            t["resident_end"] / MB,
            100 * t["saved"] / t["baseline_footprint"],
        )
        for name, t in tiers.items()
    ]
    print_figure(
        "Figure 11 — Web on memory-bound hosts",
        ["tier", "RPS (first 20m)", "RPS (last 20m)", "RPS delta %",
         "resident (MB)", "memory saved %"],
        rows,
    )

    base, ssd, zswap = tiers["baseline"], tiers["TMO/ssd"], tiers["TMO/zswap"]

    # Baseline: the memory-bound decline (paper: can exceed 20%).
    base_drop = 1.0 - base["rps_end"] / base["rps_start"]
    assert base_drop > 0.10

    # TMO eliminates (almost all of) the decline on both backends.
    for tier in (ssd, zswap):
        drop = 1.0 - tier["rps_end"] / tier["rps_start"]
        assert drop < base_drop / 2
        assert tier["rps_end"] > base["rps_end"] * 1.05

    # TMO offloads a significant fraction of system memory.
    for tier in (ssd, zswap):
        assert tier["resident_end"] < 0.95 * base["resident_end"]
        assert tier["offloaded"] > 0

    # Figure 11(b) plots normalised *resident* memory: the compressed
    # backend drives Web's resident size further down than the SSD
    # backend (the paper's ~13% vs ~4% peak saving) — Web's 4x
    # compressibility and its sensitivity to the slower per-fault cost
    # of the SSD both point the same way.
    assert zswap["resident_end"] < ssd["resident_end"]
