"""Figure 1: cost of memory, compressed memory and SSD across HW
generations, as a percentage of compute infrastructure.

Shape to reproduce: DRAM climbs toward 33% of server cost; compressed
memory is ~1/3 of that (3x ratio); iso-capacity SSD stays under 1%
(~10x cheaper per byte than compressed memory).
"""

from repro.analysis.costs import COST_TRENDS, cost_table

from bench_common import print_figure


def build_table():
    return cost_table(ratio=3.0)


def test_fig01_cost_trends(benchmark):
    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    print_figure(
        "Figure 1 — cost as % of compute infrastructure",
        ["gen", "memory %", "compressed %", "ssd iso-capacity %"],
        rows,
    )

    memory = [r[1] for r in rows]
    compressed = [r[2] for r in rows]
    ssd = [r[3] for r in rows]

    # DRAM cost grows monotonically and reaches 33%.
    assert memory == sorted(memory)
    assert abs(memory[-1] - 33.0) < 1e-9
    # Compressed memory = memory / 3.
    for m, c in zip(memory, compressed):
        assert abs(c - m / 3.0) < 1e-9
    # SSD iso-capacity stays under 1% in every generation and is ~10x
    # cheaper than compressed memory.
    for c, s in zip(compressed, ssd):
        assert s < 1.0
        assert c / s > 5.0
    # DRAM power trend reaches 38%.
    assert abs(COST_TRENDS[-1].memory_power_pct - 38.0) < 1e-9
