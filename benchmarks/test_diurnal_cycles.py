"""Long-horizon behaviour: Senpai over diurnal load cycles.

The fleet TMO runs on breathes daily. Over compressed day cycles the
controller must ride the swing: offload the trough's cold surplus,
yield instantly to the peak's expansion (the stateless knob), and keep
pressure bounded throughout. This is the steady-state regime behind
Section 4.1's "running in production for more than a year".

Shape: resident memory oscillates with the cycle while its *mean*
ratchets down cycle over cycle as Senpai drains the true cold mass;
zero OOMs and zero blocked expansions across the whole horizon.
"""

import pytest

from repro.core.senpai import Senpai, SenpaiConfig
from repro.psi.types import Resource
from repro.sim.host import HostedWorkload
from repro.workloads.access import HeatBands
from repro.workloads.apps import AppProfile
from repro.workloads.diurnal import DiurnalWorkload

from bench_common import bench_host, print_figure

MB = 1 << 20
DAY_S = 2400.0   # one compressed day
N_DAYS = 4

PROFILE = AppProfile(
    name="service", size_gb=2.2, anon_frac=0.65,
    bands=HeatBands(0.40, 0.10, 0.10),
    compress_ratio=3.0, cold_never_share=0.25,
    nthreads=4, cpu_cores=2.0,
)


def run_experiment():
    host = bench_host(backend="zswap", ram_gb=4.0, tick_s=2.0)
    host.mm.create_cgroup("app", compressibility=PROFILE.compress_ratio)
    host.psi.add_group("app")
    workload = DiurnalWorkload(
        host.mm, PROFILE, "app", seed=42,
        period_s=DAY_S, amplitude=0.4, footprint_swing=0.15,
    )
    workload.start(0.0, size_scale=1.0)
    tasks = [host.psi.add_task(f"app/t{i}", "app") for i in range(4)]
    host._hosted["app"] = HostedWorkload(
        workload=workload, cgroup_name="app", psi_tasks=tasks
    )
    host.add_controller(
        Senpai(SenpaiConfig(reclaim_ratio=0.002, max_step_frac=0.02))
    )
    host.run(N_DAYS * DAY_S)

    resident = host.metrics.series("app/resident_bytes")
    days = []
    for day in range(N_DAYS):
        window = resident.window(day * DAY_S, (day + 1) * DAY_S)
        days.append({
            "mean_mb": window.mean() / MB,
            "min_mb": window.min() / MB,
            "max_mb": window.max() / MB,
        })
    oom_ticks = sum(host.metrics.series("app/oom").values)
    sample = host.psi.group("app").sample(
        Resource.MEMORY, host.clock.now
    )
    return {
        "days": days,
        "oom_ticks": int(oom_ticks),
        "direct_reclaims": host.mm.cgroup("app").vmstat.direct_reclaim,
        "psi_mem": sample.some_avg300,
        "offloaded_mb": host.mm.cgroup("app").offloaded_bytes() / MB,
    }


def test_diurnal_cycles(benchmark):
    r = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        (f"day {i + 1}", d["min_mb"], d["mean_mb"], d["max_mb"])
        for i, d in enumerate(r["days"])
    ]
    print_figure(
        "Senpai over diurnal cycles — resident memory (MB)",
        ["day", "min", "mean", "max"],
        rows,
    )
    print(f"offloaded at end: {r['offloaded_mb']:.0f} MB; "
          f"OOM ticks: {r['oom_ticks']}; "
          f"blocked allocations: {r['direct_reclaims']}; "
          f"PSI mem avg300: {100 * r['psi_mem']:.3f}%")

    days = r["days"]
    # The resident set breathes visibly within each steady-state day.
    for day in days[1:]:
        assert day["max_mb"] > 1.02 * day["min_mb"]
    # And the daily mean ratchets down as the cold mass drains.
    assert days[-1]["mean_mb"] < days[0]["mean_mb"]
    # No OOMs, no blocked expansions, bounded pressure — for days.
    assert r["oom_ticks"] == 0
    assert r["direct_reclaims"] == 0
    assert r["psi_mem"] < 0.01
    assert r["offloaded_mb"] > 100
