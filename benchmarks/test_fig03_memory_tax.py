"""Figure 3: datacenter and microservice memory tax.

Shape to reproduce: the taxes average 20% of total server memory —
13% datacenter tax (uniform across workloads) + 7% microservice tax.
"""

import pytest

from repro.workloads.tax import (
    DATACENTER_TAX_FRAC,
    MICROSERVICE_TAX_FRAC,
    TAX_PROFILES,
)

from repro.workloads.base import Workload

from bench_common import add_app, bench_host, preloaded, print_figure

DURATION_S = 300.0
GB = 1 << 30


def run_experiment():
    """Measure actual tax footprints on a host running a real app."""
    host = bench_host(backend=None)
    add_app(host, "Feed", size_scale=0.04)
    # Preload the tax file sets: Figure 3 characterises allocated
    # memory, which includes page cache the sidecars populated.
    tax_scale = host.config.ram_bytes / (64.0 * GB)
    for kind, profile in TAX_PROFILES.items():
        slug = kind.lower().replace(" ", "-")
        host.add_workload(
            Workload, profile=preloaded(profile), name=slug,
            size_scale=tax_scale,
        )
    host.run(DURATION_S)
    ram = host.config.ram_bytes

    def frac(name: str) -> float:
        cg = host.mm.cgroup(name)
        return (cg.resident_bytes + cg.offloaded_bytes()) / ram

    return {
        "Datacenter Tax": frac("datacenter-tax"),
        "Microservice Tax": frac("microservice-tax"),
    }


def test_fig03_memory_tax(benchmark):
    measured = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    total = sum(measured.values())
    rows = [
        (kind, 100 * value) for kind, value in measured.items()
    ] + [("Total", 100 * total)]
    print_figure(
        "Figure 3 — memory tax (% of server memory)",
        ["component", "memory %"],
        rows,
    )

    # Declared fractions match the paper exactly.
    assert DATACENTER_TAX_FRAC == pytest.approx(0.13)
    assert MICROSERVICE_TAX_FRAC == pytest.approx(0.07)
    # Measured footprints track the declared fractions. The microservice
    # tax loads part of its file set lazily, so allow downward slack.
    assert measured["Datacenter Tax"] == pytest.approx(0.13, abs=0.04)
    assert measured["Microservice Tax"] == pytest.approx(0.07, abs=0.03)
    assert total == pytest.approx(0.20, abs=0.05)
    # Datacenter tax is the larger component.
    assert measured["Datacenter Tax"] > measured["Microservice Tax"]
    # Tax SLOs are relaxed: both profiles are colder than typical apps.
    for profile in TAX_PROFILES.values():
        assert profile.bands.cold >= 0.45
