"""Shared infrastructure for the figure-reproduction benchmarks.

Every benchmark regenerates one of the paper's tables/figures on a
scaled-down simulated host: the *shape* of each result (who wins, rough
factors, crossovers) is asserted; absolute values are printed for
EXPERIMENTS.md.

Scaling conventions (see DESIGN.md):

* hosts are 4-8 GB with 1-2 MiB pages instead of 64 GB/4 KiB — all
  rates are per-byte so shapes are granularity-independent;
* workload footprints are scaled by ``size_scale``;
* simulated durations are tens of minutes instead of the paper's hours
  or days; Senpai's reaction time scales with its period, which we keep
  at the production 6 s.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.reporting import format_table
from repro.core.senpai import Senpai, SenpaiConfig
from repro.sim.host import Host, HostConfig
from repro.workloads.apps import APP_CATALOG, AppProfile
from repro.workloads.base import Workload
from repro.workloads.tax import TAX_PROFILES, TaxWorkload
from repro.workloads.web import WebConfig, WebWorkload

MB = 1 << 20
GB = 1 << 30

#: Default bench host: 4 GB, 1 MiB pages (4096 pages), 16 CPUs.
BENCH_RAM_GB = 4.0
BENCH_PAGE = 1 * MB
BENCH_NCPU = 16
BENCH_SEED = 20260704

#: Footprint scale for production profiles on the bench host.
BENCH_SCALE = 0.05


def bench_host(
    backend: Optional[str] = "zswap",
    ram_gb: float = BENCH_RAM_GB,
    seed: int = BENCH_SEED,
    tick_s: float = 1.0,
    **overrides,
) -> Host:
    """Construct the standard benchmark host."""
    config = HostConfig(
        ram_gb=ram_gb,
        ncpu=BENCH_NCPU,
        page_size_bytes=BENCH_PAGE,
        seed=seed,
        backend=backend,
        tick_s=tick_s,
        **overrides,
    )
    return Host(config)


def add_app(
    host: Host,
    app: str,
    name: str = "app",
    size_scale: float = BENCH_SCALE,
    web_config: Optional[WebConfig] = None,
) -> Workload:
    """Attach a catalog application to a host."""
    profile = APP_CATALOG[app]
    if app == "Web":
        return host.add_workload(
            WebWorkload, name=name, size_scale=size_scale,
            config=web_config or WebConfig(),
        )
    return host.add_workload(
        Workload, profile=profile, name=name, size_scale=size_scale
    )


def preloaded(profile: AppProfile) -> AppProfile:
    """A copy of ``profile`` with its file set preloaded into the page
    cache — used by the characterisation benches (Figures 3/4), which
    measure *allocated* memory: in production, an app's file-backed
    memory sits in the page cache whether or not it was recently read."""
    import dataclasses

    return dataclasses.replace(profile, file_preload=True)


def add_taxes(host: Host, size_scale_ram: Optional[float] = None) -> None:
    """Attach both tax sidecars, scaled to the host's RAM."""
    scale = (
        size_scale_ram
        if size_scale_ram is not None
        else host.config.ram_bytes / (64.0 * GB)
    )
    for kind in TAX_PROFILES:
        slug = kind.lower().replace(" ", "-")
        host.add_workload(TaxWorkload, name=slug, kind=kind,
                          size_scale=scale)


def add_senpai(host: Host, config: Optional[SenpaiConfig] = None) -> Senpai:
    return host.add_controller(Senpai(config or SenpaiConfig()))


def print_figure(title: str, headers, rows) -> None:
    """Emit one figure's table to stdout (captured by pytest -s)."""
    print()
    print(format_table(headers, rows, title=title))


def run_measured(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its value.

    The experiments are long deterministic simulations; timing them once
    is enough and re-running them per benchmarking round would be waste.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
