"""Figure 8: Senpai's PSI tracking and reclaim-volume tuning.

Shape to reproduce: reclaim volume moves inversely with observed
pressure — when the container's pressure approaches the threshold the
step shrinks toward zero, and while pressure sits below the threshold
Senpai keeps up a steady trickle of reclaim.
"""

import numpy as np
import pytest

from repro.core.senpai import SenpaiConfig

from bench_common import (
    add_app,
    add_senpai,
    bench_host,
    print_figure,
)

DURATION_S = 1800.0


def run_experiment():
    host = bench_host(backend="zswap")
    add_app(host, "Feed", size_scale=0.04)
    config = SenpaiConfig(reclaim_ratio=0.002, max_step_frac=0.02)
    add_senpai(host, config)
    host.run(DURATION_S)
    pressure = host.metrics.series("app/senpai_pressure")
    reclaim = host.metrics.series("app/senpai_reclaim")
    return host, pressure, reclaim, config


def test_fig08_senpai_tracking(benchmark):
    host, pressure, reclaim, config = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )

    # Pair the per-period samples (pressure only recorded when a
    # reclaim was attempted; align on timestamps).
    by_time = dict(zip(reclaim.times, reclaim.values))
    pairs = [
        (p, by_time[t]) for t, p in zip(pressure.times, pressure.values)
        if t in by_time
    ]
    assert len(pairs) > 50

    rows = [
        ("periods", len(reclaim)),
        ("mean normalised pressure", float(np.mean(pressure.values))),
        ("mean reclaim/period (MB)",
         float(np.mean(reclaim.values)) / (1 << 20)),
        ("total offloaded (MB)",
         host.mm.cgroup("app").offloaded_bytes() / (1 << 20)),
    ]
    print_figure("Figure 8 — Senpai tracking summary",
                 ["metric", "value"], rows)

    ps = np.array([p for p, _ in pairs])
    rs = np.array([r for _, r in pairs])

    # Above-threshold periods reclaim nothing.
    over = rs[ps >= 1.0]
    if len(over):
        assert float(over.max()) == 0.0
    # Calm periods reclaim more than pressured ones.
    calm = rs[ps < 0.25]
    pressured = rs[ps >= 0.5]
    assert len(calm) > 0
    if len(pressured):
        assert calm.mean() > pressured.mean()
    # Reclaim volume inversely correlates with pressure overall.
    if ps.std() > 1e-9 and rs.std() > 1e-9:
        corr = float(np.corrcoef(ps, rs)[0, 1])
        assert corr < 0.1
    # The trickle made real progress.
    assert host.mm.cgroup("app").offloaded_bytes() > 0
