"""Figure 9: memory savings across eight applications, by backend.

Shape to reproduce: every app saves a meaningful share of its resident
memory (paper: 7-12% with compressed memory, 10-19% with SSD); the
savings split across anonymous and file-backed memory; and for
poorly-compressible apps (ML, Ads B — quantised byte-encoded model
values at ~1.35x) SSD offloading beats zswap, which is why they run
on the SSD backend in production.
"""

import pytest

from repro.core.fleet import cgroup_memory_savings
from repro.workloads.apps import APP_CATALOG, FIG9_APPS

from bench_common import add_app, add_senpai, bench_host, print_figure
from repro.core.senpai import SenpaiConfig

DURATION_S = 5400.0

#: The production configuration (Section 3.3): reclaim_ratio 0.0005,
#: PSI threshold 0.1%, 6 s period. An hour and a half of simulated
#: time reaches the savings plateau the paper measures over days.
CONFIG = SenpaiConfig()


def run_app(app: str, backend: str):
    host = bench_host(backend=backend, tick_s=2.0)
    add_app(host, app, size_scale=0.05)
    add_senpai(host, CONFIG)
    host.run(DURATION_S)
    return cgroup_memory_savings(host.mm, "app")


def run_experiment():
    results = {}
    for app in FIG9_APPS:
        backend = APP_CATALOG[app].preferred_backend
        results[app] = (backend, run_app(app, backend))
    # Crossover check: ML under zswap, despite its 1.35x ratio.
    results["ML (zswap)"] = ("zswap", run_app("ML", "zswap"))
    return results


def test_fig09_app_savings(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        (
            app,
            backend,
            100 * stats["savings_frac"],
            100 * stats["saved_anon_bytes"] / stats["baseline_bytes"],
            100 * stats["saved_file_bytes"] / stats["baseline_bytes"],
        )
        for app, (backend, stats) in results.items()
    ]
    print_figure(
        "Figure 9 — memory savings normalised to resident size (%)",
        ["app", "backend", "total", "anon", "file"],
        rows,
    )

    for app in FIG9_APPS:
        backend, stats = results[app]
        # Meaningful savings for every app, in the paper's 7-19%
        # neighbourhood (generous tolerance for the simulated substrate).
        assert 0.04 < stats["savings_frac"] < 0.35, app
    # Savings come from both categories across the fleet.
    total_anon = sum(s["saved_anon_bytes"] for _, s in results.values())
    total_file = sum(s["saved_file_bytes"] for _, s in results.values())
    assert total_anon > 0 and total_file > 0

    # The backend-choice crossover: for quantised ML data, zswap's
    # pool overhead eats most of the per-page saving, so SSD wins
    # by a wide margin.
    ml_ssd = results["ML"][1]["savings_frac"]
    ml_zswap = results["ML (zswap)"][1]["savings_frac"]
    assert ml_ssd > 1.5 * ml_zswap

    # Web reaches ~20% savings (Section 4.2's capacity-saving claim).
    assert results["Web"][1]["savings_frac"] == pytest.approx(
        0.20, abs=0.08
    )
