"""Figure 12: the Web application under TMO with a fast vs a slow SSD.

The paper's central argument against promotion-rate-based control: the
host with the *higher* promotion rate (fast SSD) actually processes
*more* requests per second — so a static promotion-rate target is not a
robust proxy for application performance, while PSI adapts to the
backend automatically.

Shape to reproduce (panels a-f):
  (a) p90 read latency: slow SSD >> fast SSD;
  (b) fast SSD sustains a larger swap size / smaller resident set;
  (c) promotion rate: fast SSD *higher*;
  (d) RPS: fast SSD higher or equal — the crossover with (c);
  (e,f) memory/IO pressure: both bounded near the target threshold,
        i.e. PSI adapts reclaim to the device.
"""

import pytest

from repro.core.senpai import SenpaiConfig
from repro.psi.types import Resource
from repro.workloads.web import WebConfig

from bench_common import add_app, add_senpai, bench_host, print_figure

DURATION_S = 7200.0
MB = 1 << 20

#: Figure 12's devices: "fast SSD" is catalog C, "slow SSD" is B.
FAST, SLOW = "C", "B"

WEB_CONFIG = WebConfig(anon_growth_frac_per_hour=0.35)
SENPAI = SenpaiConfig(reclaim_ratio=0.002, max_step_frac=0.02)


def run_tier(model: str):
    host = bench_host(backend="ssd", ssd_model=model, tick_s=2.0)
    add_app(host, "Web", size_scale=0.066, web_config=WEB_CONFIG)
    add_senpai(host, SENPAI)
    host.run(DURATION_S)
    window = (DURATION_S - 2400, DURATION_S)
    cg = host.mm.cgroup("app")
    group = host.psi.group("app")
    mem = group.sample(Resource.MEMORY, host.clock.now)
    io = group.sample(Resource.IO, host.clock.now)
    return {
        "p90_read_ms": 1e3
        * host.metrics.series("fs/read_latency_p90").window(*window).mean(),
        "swap_mb": host.metrics.series("app/swap_bytes")
        .window(*window).mean() / MB,
        "resident_mb": host.metrics.series("app/resident_bytes")
        .window(*window).mean() / MB,
        "promotion_rate": host.metrics.series("app/promotion_rate")
        .window(*window).mean(),
        "rps": host.metrics.series("app/rps").window(*window).mean(),
        "psi_mem": mem.some_avg300,
        "psi_io": io.some_avg300,
        "pswpin": cg.vmstat.pswpin,
    }


def run_experiment():
    return {"fast": run_tier(FAST), "slow": run_tier(SLOW)}


def test_fig12_psi_vs_promotion(benchmark):
    tiers = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        (
            name,
            t["p90_read_ms"],
            t["swap_mb"],
            t["resident_mb"],
            t["promotion_rate"],
            t["rps"],
            100 * t["psi_mem"],
            100 * t["psi_io"],
        )
        for name, t in tiers.items()
    ]
    print_figure(
        "Figure 12 — Web with fast (C) vs slow (B) SSD",
        ["tier", "p90 read (ms)", "swap (MB)", "resident (MB)",
         "promo/s", "RPS", "PSI mem %", "PSI io %"],
        rows,
    )

    fast, slow = tiers["fast"], tiers["slow"]

    # (a) device latency gap is real end-to-end.
    assert slow["p90_read_ms"] > 2.0 * fast["p90_read_ms"]
    # (b) the fast SSD sustains more aggressive swapping.
    assert fast["swap_mb"] > slow["swap_mb"]
    assert fast["resident_mb"] < slow["resident_mb"]
    # (c) the promotion rate is *higher* on the fast SSD...
    assert fast["promotion_rate"] > slow["promotion_rate"]
    # (d) ...and yet RPS is higher or equal — the paper's crossover
    # that invalidates promotion rate as a performance proxy.
    assert fast["rps"] >= slow["rps"] * 0.995
    # (e,f) PSI adapts: both tiers keep average pressure bounded in
    # the neighbourhood of the 0.1% target rather than diverging.
    for t in tiers.values():
        assert t["psi_mem"] < 0.02
        assert t["psi_io"] < 0.02
