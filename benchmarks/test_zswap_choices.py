"""Ablation (Section 5.1): zswap compression algorithm and allocator.

The deployment experimented with lzo, lz4 and zstd, and with the
Z3fold, Zbud and Zsmalloc pool allocators. Shape to reproduce: zstd
gives the best compression ratio at acceptable overhead, and zsmalloc
the densest pool — the production selection (zstd + zsmalloc) yields
the largest net memory savings.
"""

import itertools

import pytest

from repro.backends.compression import COMPRESSION_ALGORITHMS
from repro.backends.zswap import ZSWAP_ALLOCATORS
from repro.core.fleet import cgroup_memory_savings
from repro.core.senpai import Senpai, SenpaiConfig
from repro.workloads.apps import APP_CATALOG
from repro.workloads.base import Workload

from bench_common import bench_host, print_figure

MB = 1 << 20
DURATION_S = 2400.0
SENPAI = SenpaiConfig(reclaim_ratio=0.002, max_step_frac=0.02)


def run_combo(algorithm: str, allocator: str):
    host = bench_host(
        backend="zswap",
        zswap_algorithm=algorithm,
        zswap_allocator=allocator,
        tick_s=2.0,
    )
    host.add_workload(
        Workload, profile=APP_CATALOG["Feed"], name="app",
        size_scale=0.05,
    )
    host.add_controller(Senpai(SENPAI))
    host.run(DURATION_S)
    stats = cgroup_memory_savings(host.mm, "app")
    backend = host.swap_backend
    return {
        "savings_frac": stats["savings_frac"],
        "pool_mb": backend.pool_bytes / MB,
        "logical_mb": backend.stored_bytes / MB,
        "compress_cpu_s": backend.compress_cpu_seconds,
    }


def run_experiment():
    combos = {}
    for algorithm, allocator in itertools.product(
        sorted(COMPRESSION_ALGORITHMS), sorted(ZSWAP_ALLOCATORS)
    ):
        combos[(algorithm, allocator)] = run_combo(algorithm, allocator)
    return combos


def test_zswap_choices_ablation(benchmark):
    combos = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        (
            algorithm,
            allocator,
            100 * r["savings_frac"],
            r["pool_mb"],
            r["logical_mb"],
            r["compress_cpu_s"],
        )
        for (algorithm, allocator), r in combos.items()
    ]
    print_figure(
        "Section 5.1 ablation — zswap algorithm x allocator",
        ["algorithm", "allocator", "savings %", "pool (MB)",
         "logical (MB)", "compress CPU (s)"],
        rows,
    )

    # Production pick: zstd + zsmalloc maximises net savings.
    best = max(combos, key=lambda k: combos[k]["savings_frac"])
    assert best == ("zstd", "zsmalloc")

    # Holding the allocator fixed, zstd packs the pool denser than the
    # faster-but-weaker algorithms.
    def density(algorithm):
        r = combos[(algorithm, "zsmalloc")]
        return r["logical_mb"] / max(1e-9, r["pool_mb"])

    assert density("zstd") > density("lzo") > density("lz4")

    # lz4 burns the least compression CPU — the overhead/ratio tradeoff
    # the paper describes.
    cpu = {a: combos[(a, "zsmalloc")]["compress_cpu_s"]
           for a in COMPRESSION_ALGORITHMS}
    assert cpu["lz4"] < cpu["lzo"] < cpu["zstd"]

    # Holding zstd fixed, zsmalloc beats the bounded packers.
    zstd = {alloc: combos[("zstd", alloc)]["savings_frac"]
            for alloc in ZSWAP_ALLOCATORS}
    assert zstd["zsmalloc"] >= zstd["z3fold"] >= zstd["zbud"] * 0.99
