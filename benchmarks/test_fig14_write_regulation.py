"""Figure 14: swap-out rate with and without SSD write regulation.

Shape to reproduce: without regulation, the offloading rollout writes
several MB/s at the cluster P90; with regulation the write rate is
modulated down to the 1 MB/s endurance budget throughout (Section 4.5),
while the same memory still gets offloaded — just spread over time.

The paper plots 14 days across a cluster; we run a seeded cluster of
hosts through a compressed timeline and report per-interval cluster
percentiles of the swap-out rate.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.senpai import Senpai, SenpaiConfig
from repro.workloads.apps import APP_CATALOG
from repro.workloads.base import Workload

from bench_common import bench_host, print_figure

PHASE_S = 2400.0
BUCKET_S = 240.0
N_HOSTS = 6
MB = 1 << 20

#: Aggressive offloading (rollout-style) so the unregulated swap write
#: rate comfortably exceeds the 1 MB/s budget during the drain.
AGGRESSIVE = dict(reclaim_ratio=0.02, max_step_frac=0.05,
                  psi_threshold=0.01, io_threshold=0.01)

#: Ads B with gentle anonymous growth (new model state arriving), kept
#: under the write budget so regulation has a feasible steady state.
ADS_B = dataclasses.replace(
    APP_CATALOG["Ads B"], growth_gb_per_hour=1.5
)


def run_host(seed: int, write_limit):
    host = bench_host(backend="ssd", ram_gb=6.0, seed=seed, tick_s=2.0)
    host.add_workload(
        Workload, profile=ADS_B, name="app", size_scale=0.08,
    )
    host.add_controller(
        Senpai(SenpaiConfig(write_limit_mb_s=write_limit, **AGGRESSIVE))
    )
    host.run(PHASE_S)
    rate = host.metrics.series("swap/out_rate_mb_s")
    buckets = [
        np.mean(rate.window(t, t + BUCKET_S).values)
        for t in np.arange(0.0, PHASE_S, BUCKET_S)
    ]
    offloaded = host.mm.cgroup("app").offloaded_bytes()
    return np.array(buckets), offloaded


def run_phase(write_limit):
    per_host = [run_host(1000 + i, write_limit) for i in range(N_HOSTS)]
    rates = np.stack([r for r, _ in per_host])  # hosts x buckets
    offloaded = [o for _, o in per_host]
    return {
        "p50": np.percentile(rates, 50, axis=0),
        "p90": np.percentile(rates, 90, axis=0),
        "offloaded_mb": float(np.mean(offloaded)) / MB,
    }


def run_experiment():
    return {"without": run_phase(None), "with": run_phase(1.0)}


def test_fig14_write_regulation(benchmark):
    phases = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    n_buckets = len(phases["without"]["p50"])
    rows = [
        (
            f"t={int(i * BUCKET_S)}s",
            phases["without"]["p50"][i],
            phases["without"]["p90"][i],
            phases["with"]["p50"][i],
            phases["with"]["p90"][i],
        )
        for i in range(n_buckets)
    ]
    print_figure(
        "Figure 14 — cluster swap-out rate (MB/s)",
        ["interval", "P50 w/o reg", "P90 w/o reg",
         "P50 w/ reg", "P90 w/ reg"],
        rows,
    )
    print(
        f"offloaded per host: without={phases['without']['offloaded_mb']:.0f} MB, "
        f"with={phases['with']['offloaded_mb']:.0f} MB"
    )

    without, with_reg = phases["without"], phases["with"]

    # Unregulated rollout: the cluster P90 spikes well past the budget.
    assert float(without["p90"].max()) > 2.0
    # Regulation clamps the whole timeline (post-warmup) near 1 MB/s.
    post_warmup = with_reg["p90"][1:]
    assert float(post_warmup.max()) < 1.4
    assert float(with_reg["p50"][1:].max()) < 1.2
    # The same memory still gets offloaded — just spread over time.
    assert with_reg["offloaded_mb"] > 0.8 * without["offloaded_mb"]
