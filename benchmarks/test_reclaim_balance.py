"""Ablation (Section 3.4): TMO's refault-balanced reclaim vs the legacy
file-skewed heuristics.

Shape to reproduce: under the legacy balance, substantial portions of
the file *working set* are reclaimed (and refault) before any cold
anonymous page is considered; TMO's rewrite starts swapping as soon as
refaults appear, which more evenly offloads both pools and minimises
aggregate paging.
"""

import pytest

from repro.core.senpai import Senpai, SenpaiConfig
from repro.workloads.access import HeatBands
from repro.workloads.apps import AppProfile

from bench_common import bench_host, print_figure
from repro.workloads.base import Workload

MB = 1 << 20
GB = 1 << 30

#: A hot file cache plus a lot of cold anon — the configuration where
#: the legacy balance hurts most.
PROFILE = AppProfile(
    name="mixed",
    size_gb=2800 * MB / GB,
    anon_frac=0.55,
    bands=HeatBands(0.45, 0.10, 0.10),
    compress_ratio=3.0,
    file_preload=True,
    nthreads=4,
    cpu_cores=2.0,
)

DURATION_S = 3600.0
SENPAI = SenpaiConfig(reclaim_ratio=0.003, max_step_frac=0.03)


def run_policy(policy: str):
    host = bench_host(backend="zswap", ram_gb=4.0,
                      reclaim_policy=policy, tick_s=2.0)
    host.add_workload(Workload, profile=PROFILE, name="app")
    host.add_controller(Senpai(SENPAI))
    host.run(DURATION_S)
    cg = host.mm.cgroup("app")
    vm = cg.vmstat
    return {
        "refaults": vm.workingset_refault,
        "swapins": vm.pswpin,
        "swapouts": vm.pswpout,
        "file_evictions": vm.workingset_evict,
        "aggregate_paging": vm.workingset_refault + vm.pswpin,
        "offloaded_mb": cg.offloaded_bytes() / MB,
        "file_cache_mb": cg.file_bytes / MB,
    }


def run_experiment():
    return {"tmo": run_policy("tmo"), "legacy": run_policy("legacy")}


def test_reclaim_balance_ablation(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        (
            name,
            r["refaults"],
            r["swapins"],
            r["swapouts"],
            r["aggregate_paging"],
            r["file_cache_mb"],
        )
        for name, r in results.items()
    ]
    print_figure(
        "Section 3.4 ablation — reclaim balance",
        ["policy", "refaults", "swap-ins", "swap-outs",
         "aggregate paging", "file cache (MB)"],
        rows,
    )

    tmo, legacy = results["tmo"], results["legacy"]

    # Legacy skew: it swaps little-to-nothing while file cache remains,
    # thrashing the file working set instead.
    assert legacy["swapouts"] < 0.2 * tmo["swapouts"]
    assert legacy["refaults"] > 1.5 * tmo["refaults"]
    # TMO pages less in aggregate while offloading at least comparable
    # volumes.
    assert tmo["aggregate_paging"] < legacy["aggregate_paging"]
    # TMO spreads reclaim across both pools: anon actually offloads.
    assert tmo["swapouts"] > 0
    assert tmo["offloaded_mb"] > 0
    # TMO retains more of the file working set in cache.
    assert tmo["file_cache_mb"] > legacy["file_cache_mb"]
