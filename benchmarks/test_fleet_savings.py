"""Section 4.1's headline: fleet-wide savings of 20-32% of total memory.

TMO saves 7-19% of resident memory per application plus ~13% of server
memory from the taxes. This bench runs a small, seeded fleet over a mix
of applications (each on its production backend, with both tax sidecars
and the production Senpai config) and aggregates per-server savings.
"""

import pytest

from repro.core.fleet import Fleet, HostPlan
from repro.core.senpai import SenpaiConfig
from repro.sim.host import HostConfig

from bench_common import BENCH_NCPU, BENCH_PAGE, BENCH_SEED, print_figure

DURATION_S = 5400.0

APPS = ["Feed", "Web", "Cache B", "Ads B", "ML"]


def run_experiment():
    fleet = Fleet(
        base_config=HostConfig(
            ram_gb=4.0, ncpu=BENCH_NCPU, page_size_bytes=BENCH_PAGE,
            tick_s=2.0,
        ),
        seed=BENCH_SEED,
    )
    plans = [
        HostPlan(app=app, count=1, size_scale=0.035,
                 senpai=SenpaiConfig())
        for app in APPS
    ]
    return fleet.run(plans, duration_s=DURATION_S)


def test_fleet_savings(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        (
            r.app,
            r.backend,
            100 * r.app_savings_frac,
            100 * r.tax_savings_frac_of_ram,
            100 * r.total_savings_frac_of_ram,
        )
        for r in result.reports
    ]
    rows.append(
        (
            "Fleet",
            "-",
            100 * sum(r.app_savings_frac for r in result.reports)
            / len(result.reports),
            100 * result.tax_savings_of_ram(),
            100 * result.total_savings_of_ram(),
        )
    )
    print_figure(
        "Section 4.1 — fleet savings",
        ["app", "backend", "app savings %", "tax savings (of RAM) %",
         "total (of RAM) %"],
        rows,
    )

    # Per-app savings land in the paper's 7-19% neighbourhood.
    for report in result.reports:
        assert 0.04 < report.app_savings_frac < 0.35, report.app
    # Tax savings contribute a meaningful extra share of server memory
    # (paper: ~13%).
    assert 0.04 < result.tax_savings_of_ram() < 0.20
    # Fleet total: the paper's 20-32% band, with simulation tolerance.
    assert 0.12 < result.total_savings_of_ram() < 0.40
