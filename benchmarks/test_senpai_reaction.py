"""Senpai's reaction-time asymmetry (Section 3.3).

"The maximum is 1% of the total workload size in each reclaim period.
As a result, reaction time to extreme contraction tends to be minutes.
Adaptation to workload expansion, on the other hand, is immediate."

Two scripted events on one host:

* **contraction** — the workload's working set collapses (most of its
  hot pages go cold); Senpai drains the newly-cold memory at its capped
  step, taking minutes;
* **expansion** — the workload allocates a large burst; the stateless
  ``memory.reclaim`` knob imposes no ceiling, so the burst lands
  without a single blocked allocation.
"""

import dataclasses

import pytest

from repro.core.senpai import Senpai, SenpaiConfig
from repro.workloads.access import HeatBands
from repro.workloads.apps import AppProfile
from repro.workloads.base import Workload

from bench_common import bench_host, print_figure

MB = 1 << 20
GB = 1 << 30

PROFILE = AppProfile(
    name="elastic",
    size_gb=1.6,
    anon_frac=0.7,
    bands=HeatBands(0.55, 0.10, 0.10),  # mostly hot before contraction
    compress_ratio=3.0,
    nthreads=4,
    cpu_cores=2.0,
)

#: Production-style config: 0.05%/period trickle, 1%/period cap.
CONFIG = SenpaiConfig(reclaim_ratio=0.0005, max_step_frac=0.01)

SETTLE_S = 1200.0
WINDOW_S = 7200.0


def run_experiment():
    host = bench_host(backend="zswap", ram_gb=4.0, tick_s=2.0)
    workload = host.add_workload(
        Workload, profile=PROFILE, name="app", size_scale=1.0
    )
    host.add_controller(Senpai(CONFIG))
    host.run(SETTLE_S)

    # --- contraction: the hot working set collapses to cold.
    cold = dataclasses.replace(
        PROFILE, bands=HeatBands(0.10, 0.05, 0.05)
    )
    workload.profile = cold
    workload.shift_workingset(1.0, host.clock.now)
    resident_before = host.mm.cgroup("app").resident_bytes
    t_contract = host.clock.now
    drained_at = None
    target = resident_before * 0.80  # "drained": 20% contraction
    while host.clock.now < t_contract + WINDOW_S:
        host.run(30.0)
        if (drained_at is None
                and host.mm.cgroup("app").resident_bytes <= target):
            drained_at = host.clock.now
    contraction_minutes = (
        (drained_at - t_contract) / 60.0 if drained_at else float("inf")
    )

    # --- expansion: a 600 MB allocation burst in one tick.
    direct_before = host.mm.cgroup("app").vmstat.direct_reclaim
    burst_pages = int(600 * MB / host.mm.page_size_bytes)
    from repro.workloads.base import TickResult

    tick = TickResult(name="burst")
    allocated = workload._allocate_more(
        burst_pages, host.clock.now, tick
    )
    direct_after = host.mm.cgroup("app").vmstat.direct_reclaim

    return {
        "resident_before_mb": resident_before / MB,
        "contraction_minutes": contraction_minutes,
        "burst_pages": burst_pages,
        "allocated_pages": allocated,
        "burst_blocked": direct_after - direct_before,
        "burst_oom": tick.oom,
    }


def test_senpai_reaction_times(benchmark):
    r = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        ("resident at contraction (MB)", r["resident_before_mb"]),
        ("minutes to drain 20%", r["contraction_minutes"]),
        ("expansion burst (pages)", r["burst_pages"]),
        ("allocated immediately (pages)", r["allocated_pages"]),
        ("blocked allocations", r["burst_blocked"]),
    ]
    print_figure("Section 3.3 — Senpai reaction times",
                 ["metric", "value"], rows)

    # Contraction: minutes-scale, not seconds, not hours.
    assert 2.0 < r["contraction_minutes"] < 90.0
    # Expansion: the whole burst lands at once, nothing blocks.
    assert r["allocated_pages"] == r["burst_pages"]
    assert r["burst_blocked"] == 0
    assert not r["burst_oom"]
