"""Figure 7: the kernel's some/full pressure accounting semantics.

Shape to reproduce: the paper's worked two-process example — quarter 1
accrues 12.5% some from disjoint stalls; quarter 2 accrues 6.25% full
(both stalled) plus 18.75% some-only; totals over the normalised
timeline follow exactly.

Also benchmarks the PSI engine's transition throughput, since the
paper's stated cost of PSI is scheduling-path bookkeeping.
"""

import pytest

from repro.psi.group import FULL, SOME
from repro.psi.tracker import PsiSystem
from repro.psi.types import Resource, TaskFlags

from bench_common import print_figure

RUN = TaskFlags.RUNNING
MEM = TaskFlags.MEMSTALL

T = 100.0


def schedule():
    events = [(0.0, "A", RUN), (0.0, "B", RUN)]
    events += [(5.0, "A", MEM), (11.25, "A", RUN)]
    events += [(15.0, "B", MEM), (21.25, "B", RUN)]
    events += [(25.0, "B", MEM)]
    events += [(35.0, "A", MEM), (41.25, "A", RUN)]
    events += [(50.0, "B", RUN)]
    events += [(60.0, "A", MEM), (60.0, "B", MEM)]
    events += [(66.25, "A", RUN), (66.25, "B", RUN)]
    events += [(80.0, "A", MEM), (92.5, "A", RUN)]
    return sorted(events, key=lambda e: e[0])


def run_experiment():
    psi = PsiSystem(ncpu=2)
    psi.add_group("domain")
    tasks = {
        "A": psi.add_task("A", "domain"),
        "B": psi.add_task("B", "domain"),
    }
    group = psi.group("domain")
    quarters = []
    prev = (0.0, 0.0)
    events = schedule()
    i = 0
    for boundary in (25.0, 50.0, 75.0, 100.0):
        while i < len(events) and events[i][0] < boundary:
            when, name, flags = events[i]
            tasks[name].set_flags(flags, when)
            i += 1
        group.tick(boundary)
        some = group.total(Resource.MEMORY, SOME)
        full = group.total(Resource.MEMORY, FULL)
        quarters.append((some - prev[0], full - prev[1]))
        prev = (some, full)
    return quarters, prev


def engine_throughput():
    """Raw PSI transition processing (the benchmarked kernel-path cost)."""
    psi = PsiSystem(ncpu=8)
    psi.add_group("g")
    tasks = [psi.add_task(f"t{i}", "g") for i in range(8)]
    now = 0.0
    for step in range(2000):
        task = tasks[step % 8]
        flags = MEM if step % 2 == 0 else RUN
        now += 0.001
        task.set_flags(flags, now)
    return psi.some_total("g", Resource.MEMORY)


def test_fig07_psi_semantics(benchmark):
    quarters, (total_some, total_full) = run_experiment()
    benchmark(engine_throughput)

    rows = [
        (f"Q{i + 1}", some, full, some - full)
        for i, (some, full) in enumerate(quarters)
    ] + [("Total", total_some, total_full, total_some - total_full)]
    print_figure(
        "Figure 7 — some/full accounting over the worked example "
        "(% of timeline)",
        ["quarter", "some", "full", "some-only"],
        rows,
    )

    q1, q2, q3, q4 = quarters
    assert q1 == (pytest.approx(12.5), pytest.approx(0.0))
    assert q2[1] == pytest.approx(6.25)       # full
    assert q2[0] - q2[1] == pytest.approx(18.75)  # "in addition" some
    assert q3 == (pytest.approx(6.25), pytest.approx(6.25))
    assert q4 == (pytest.approx(12.5), pytest.approx(0.0))
    assert total_some == pytest.approx(56.25)
    assert total_full == pytest.approx(12.5)
    assert total_some >= total_full
