"""Figure 10: datacenter and microservice memory-tax savings.

Shape to reproduce: TMO reclaims most of the (cold, relaxed-SLO) tax
memory — the paper saves 9% of server memory from datacenter tax and
4% from microservice tax, 13% total, on top of application savings.
"""

import pytest

from repro.core.fleet import cgroup_memory_savings
from repro.core.senpai import SenpaiConfig
from repro.workloads.base import Workload
from repro.workloads.tax import TAX_PROFILES

from bench_common import (
    add_app,
    add_senpai,
    bench_host,
    preloaded,
    print_figure,
)

DURATION_S = 5400.0
GB = 1 << 30


def run_experiment():
    host = bench_host(backend="zswap", tick_s=2.0)
    add_app(host, "Feed", size_scale=0.035)
    tax_scale = host.config.ram_bytes / (64.0 * GB)
    for kind, profile in TAX_PROFILES.items():
        slug = kind.lower().replace(" ", "-")
        host.add_workload(
            Workload, profile=preloaded(profile), name=slug,
            size_scale=tax_scale,
        )
    add_senpai(host, SenpaiConfig())
    host.run(DURATION_S)

    ram = host.config.ram_bytes
    return {
        "Datacenter Tax": cgroup_memory_savings(host.mm, "datacenter-tax"),
        "Microservice Tax": cgroup_memory_savings(
            host.mm, "microservice-tax"
        ),
        "app": cgroup_memory_savings(host.mm, "app"),
        "ram": ram,
    }


def test_fig10_tax_savings(benchmark):
    stats = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    ram = stats["ram"]
    dc = stats["Datacenter Tax"]["saved_bytes"] / ram
    ms = stats["Microservice Tax"]["saved_bytes"] / ram
    app = stats["app"]["saved_bytes"] / ram
    rows = [
        ("Datacenter Tax", 100 * dc),
        ("Microservice Tax", 100 * ms),
        ("Tax total", 100 * (dc + ms)),
        ("Application (for reference)", 100 * app),
        ("Host total", 100 * (dc + ms + app)),
    ]
    print_figure(
        "Figure 10 — savings as % of server memory",
        ["component", "savings %"],
        rows,
    )

    # Datacenter tax savings exceed microservice tax savings (9% vs 4%
    # in the paper) — it is both larger and colder.
    assert dc > ms > 0.0
    # Combined tax savings are a significant share of server memory,
    # in the paper's neighbourhood (13%).
    assert dc + ms == pytest.approx(0.13, abs=0.07)
    # Tax savings are a large share of the tax footprint itself: most
    # of the relaxed-SLO memory is offloadable.
    dc_frac = stats["Datacenter Tax"]["savings_frac"]
    assert dc_frac > 0.3
    # Savings add to the application's own savings.
    assert app > 0.0
