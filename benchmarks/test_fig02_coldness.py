"""Figure 2: recently-used memory in 1/2/5-minute windows per app.

Shape to reproduce: coldness varies wildly — Cache B is ~81% active in
5 minutes (19% cold), Web only ~38% active (62% cold); Feed is 50/8/12
with 30% cold; the fleet average is ~35% cold.
"""

import pytest

from repro.analysis.coldness import measure_coldness
from repro.workloads.apps import FIG2_APPS

from bench_common import BENCH_SCALE, add_app, bench_host, print_figure

#: Long enough for the re-access process to reach recency steady state
#: (several multiples of the 5-minute window).
DURATION_S = 900.0


def run_experiment():
    results = {}
    for app in FIG2_APPS:
        host = bench_host(backend=None)  # characterisation only
        workload = add_app(host, app, size_scale=BENCH_SCALE)
        host.run(DURATION_S)
        results[app] = measure_coldness(workload, host.clock.now)
    return results


def test_fig02_coldness(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        (
            app,
            100 * profile.used_1min,
            100 * profile.used_2min,
            100 * profile.used_5min,
            100 * profile.cold,
        )
        for app, profile in results.items()
    ]
    avg_cold = sum(r[4] for r in rows) / len(rows)
    rows.append(("Average", *[sum(r[i] for r in rows) / len(rows)
                              for i in (1, 2, 3, 4)]))
    print_figure(
        "Figure 2 — memory recency (%)",
        ["app", "1 min", "+2 min", "+5 min", "cold"],
        rows,
    )

    colds = {app: profile.cold for app, profile in results.items()}
    # Web is the coldest app, Cache B the hottest.
    assert colds["Web"] == max(colds.values())
    assert colds["Cache B"] == min(colds.values())
    # Paper's headline numbers, within simulation tolerance.
    assert colds["Web"] == pytest.approx(0.62, abs=0.12)
    assert colds["Cache B"] == pytest.approx(0.19, abs=0.10)
    assert colds["Feed"] == pytest.approx(0.30, abs=0.10)
    # Fleet-average coldness ~35%.
    assert avg_cold == pytest.approx(35.0, abs=8.0)
    # Coldness varies wildly: at least a 2.5x spread.
    assert max(colds.values()) / min(colds.values()) > 2.5
