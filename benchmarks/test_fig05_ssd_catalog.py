"""Figure 5: SSD characteristics across the fleet's device types A-G.

Shape to reproduce: endurance improves over generations but stays a
limited resource; IOPS is relatively stable; read/write latency varies
hugely — p99 read from 9.3 ms (oldest) down to 470 us (newest).
"""

import numpy as np
import pytest

from repro.backends.base import IoKind
from repro.backends.ssd import SSD_CATALOG, make_ssd_device
from repro.sim.rng import derive_rng

from bench_common import BENCH_SEED, print_figure

SAMPLES = 3000


def measure_device(model: str):
    """Sample an uncontended device's read-latency distribution."""
    device = make_ssd_device(
        model, derive_rng(BENCH_SEED, f"fig05:device:{model}")
    )
    lats = np.array(
        [device.issue(IoKind.READ) for _ in range(SAMPLES)]
    )
    return {
        "p50_us": float(np.percentile(lats, 50) * 1e6),
        "p99_us": float(np.percentile(lats, 99) * 1e6),
    }


def run_experiment():
    return {model: measure_device(model) for model in sorted(SSD_CATALOG)}


def test_fig05_ssd_catalog(benchmark):
    measured = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        (
            model,
            SSD_CATALOG[model].endurance_pbw,
            SSD_CATALOG[model].read_iops / 1e3,
            SSD_CATALOG[model].read_p99_us,
            measured[model]["p99_us"],
        )
        for model in sorted(SSD_CATALOG)
    ]
    print_figure(
        "Figure 5 — SSD characteristics",
        ["device", "endurance (PBW)", "read kIOPS",
         "rated p99 (us)", "measured p99 (us)"],
        rows,
    )

    # Endurance grows with generation (but remains finite/limited).
    endurance = [SSD_CATALOG[m].endurance_pbw for m in sorted(SSD_CATALOG)]
    assert endurance == sorted(endurance)
    # Latency range spans the paper's 9.3 ms .. 470 us.
    assert SSD_CATALOG["A"].read_p99_us / SSD_CATALOG["G"].read_p99_us > 15
    # IOPS stays within one order of magnitude across generations.
    iops = [SSD_CATALOG[m].read_iops for m in sorted(SSD_CATALOG)]
    assert max(iops) / min(iops) < 10
    # The sampled latency model hits its rated p99 within tolerance.
    for model in sorted(SSD_CATALOG):
        assert measured[model]["p99_us"] == pytest.approx(
            SSD_CATALOG[model].read_p99_us, rel=0.30
        ), model
    # Figure 12's device pairing: C ("fast") is much faster than B
    # ("slow").
    assert (
        measured["B"]["p99_us"] / measured["C"]["p99_us"] > 2.0
    )
