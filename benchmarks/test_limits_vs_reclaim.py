"""Ablation (Section 3.3): stateful memory.max control vs the stateless
memory.reclaim knob.

Shape to reproduce: under rapid memory growth, the early limit-driving
Senpai leaves a stale ceiling in place between its polls — expanding
allocations slam into it and block in direct reclaim. The stateless
knob reclaims the same volumes without ever blocking expansion.
"""

import dataclasses

import pytest

from repro.core.limits import LimitSenpai, LimitSenpaiConfig
from repro.core.senpai import Senpai, SenpaiConfig
from repro.workloads.apps import APP_CATALOG
from repro.workloads.base import Workload

from bench_common import bench_host, print_figure

MB = 1 << 20
DURATION_S = 1800.0

#: Feed under rapid expansion (fresh cache warm-up, say): ~3 GB/hour.
GROWING = dataclasses.replace(
    APP_CATALOG["Feed"], growth_gb_per_hour=3.0
)


def run_controller(kind: str):
    host = bench_host(backend="zswap", ram_gb=6.0, tick_s=1.0)
    host.add_workload(
        Workload, profile=GROWING, name="app", size_scale=0.04
    )
    if kind == "limit":
        host.add_controller(
            LimitSenpai(LimitSenpaiConfig(shrink_frac=0.002))
        )
    else:
        host.add_controller(
            Senpai(SenpaiConfig(reclaim_ratio=0.002, max_step_frac=0.02))
        )
    host.run(DURATION_S)
    cg = host.mm.cgroup("app")
    oom_ticks = sum(host.metrics.series("app/oom").values)
    return {
        "direct_reclaims": cg.vmstat.direct_reclaim,
        "oom_ticks": int(oom_ticks),
        "offloaded_mb": cg.offloaded_bytes() / MB,
        "final_mb": (cg.resident_bytes + cg.offloaded_bytes()) / MB,
    }


def run_experiment():
    return {
        "memory.max (stateful)": run_controller("limit"),
        "memory.reclaim (stateless)": run_controller("reclaim"),
    }


def test_limits_vs_reclaim_ablation(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        (
            name,
            r["direct_reclaims"],
            r["oom_ticks"],
            r["offloaded_mb"],
            r["final_mb"],
        )
        for name, r in results.items()
    ]
    print_figure(
        "Section 3.3 ablation — stateful limit vs stateless reclaim",
        ["controller", "blocked allocations", "OOM ticks",
         "offloaded (MB)", "final footprint (MB)"],
        rows,
    )

    limit = results["memory.max (stateful)"]
    stateless = results["memory.reclaim (stateless)"]

    # The stale limit repeatedly blocks the expanding workload.
    assert limit["direct_reclaims"] > 50
    # The stateless knob never blocks expansion.
    assert stateless["direct_reclaims"] == 0
    assert stateless["oom_ticks"] == 0
    # Both still achieve offloading.
    assert limit["offloaded_mb"] > 0
    assert stateless["offloaded_mb"] > 0
    # Expansion was not starved under the stateless knob: the workload
    # reached at least the footprint it reached under the limit.
    assert stateless["final_mb"] >= 0.95 * limit["final_mb"]
