"""Figure 13: Senpai configuration tuning on non-memory-bound Web hosts.

Config A is the mild production setting; Config B tolerates 10x the
pressure and reclaims 10x faster. Shape to reproduce: B saves more
memory than A, but at the cost of an RPS regression; memory PSI stays
near baseline for both (Senpai controls it), while B's *IO* pressure is
sustained higher — because B cuts into the file cache, driving SSD
reads (bytecode refaults) that hurt the CPU-frontend-bound Web.

This is the experiment that motivated monitoring IO PSI alongside
memory PSI and shipping Config A fleet-wide.
"""

import pytest

from repro.core.senpai import SenpaiConfig
from repro.psi.types import Resource
from repro.workloads.web import WebConfig

from bench_common import add_app, add_senpai, bench_host, print_figure

DURATION_S = 7200.0
MB = 1 << 20

#: Plenty of RAM: these are the paper's *non-memory-bound* hosts.
RAM_GB = 6.0

WEB_CONFIG = WebConfig(anon_growth_frac_per_hour=0.10)


def run_tier(config):
    host = bench_host(backend="zswap", ram_gb=RAM_GB, tick_s=2.0)
    add_app(host, "Web", size_scale=0.066, web_config=WEB_CONFIG)
    if config is not None:
        add_senpai(host, config)
    host.run(DURATION_S)
    window = (DURATION_S - 2400, DURATION_S)
    group = host.psi.group("app")
    mem = group.sample(Resource.MEMORY, host.clock.now)
    io = group.sample(Resource.IO, host.clock.now)
    series = host.metrics.series
    return {
        "resident_mb": series("app/resident_bytes")
        .window(*window).mean() / MB,
        "file_cache_mb": series("app/file_bytes")
        .window(*window).mean() / MB,
        "rps": series("app/rps").window(*window).mean(),
        "psi_mem": mem.some_avg300,
        "psi_io": io.some_avg300,
        "ssd_read_rate": series("fs/read_rate").window(*window).mean(),
    }


def run_experiment():
    return {
        "baseline": run_tier(None),
        "config A": run_tier(SenpaiConfig.config_a()),
        "config B": run_tier(SenpaiConfig.config_b()),
    }


def test_fig13_config_tuning(benchmark):
    tiers = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        (
            name,
            t["resident_mb"],
            t["file_cache_mb"],
            t["rps"],
            100 * t["psi_mem"],
            100 * t["psi_io"],
            t["ssd_read_rate"],
        )
        for name, t in tiers.items()
    ]
    print_figure(
        "Figure 13 — Web under Senpai Config A vs Config B",
        ["tier", "resident (MB)", "file cache (MB)", "RPS",
         "PSI mem %", "PSI io %", "SSD reads/s"],
        rows,
    )

    base = tiers["baseline"]
    a = tiers["config A"]
    b = tiers["config B"]

    # (a) Savings ordering: B saves the most, A still significant.
    assert b["resident_mb"] < a["resident_mb"] < base["resident_mb"]
    assert a["resident_mb"] < 0.95 * base["resident_mb"]
    # (b) RPS: A is neutral; B regresses.
    assert a["rps"] > 0.99 * base["rps"]
    assert b["rps"] < a["rps"]
    # (c) Memory PSI stays low in absolute terms for both configs
    # (notably higher for B, but small).
    assert a["psi_mem"] < 0.01
    assert b["psi_mem"] < 0.05
    # (d) B sustains higher IO pressure than A, which tracks baseline.
    assert b["psi_io"] > 1.5 * a["psi_io"]
    # (e) higher SSD read rates under B (file-cache refaults)...
    assert b["ssd_read_rate"] > a["ssd_read_rate"]
    # (f) ...because B cut the resident file cache far deeper.
    assert b["file_cache_mb"] < a["file_cache_mb"]
