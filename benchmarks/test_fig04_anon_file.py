"""Figure 4: anonymous vs file-backed memory breakdown.

Shape to reproduce: the split varies wildly across applications and
taxes (Cache is anon-heavy, Video and the datacenter tax are
file-heavy), so offloading must target both categories.
"""

import pytest

from repro.workloads.apps import APP_CATALOG
from repro.workloads.base import Workload
from repro.workloads.tax import TAX_PROFILES

from bench_common import bench_host, preloaded, print_figure

#: Figure 4's x-axis, in order.
DOMAINS = [
    "Datacenter Tax", "Microservice Tax",
    "Ads A", "Ads B", "Video", "Feed", "Cache", "RE", "Web",
]

DURATION_S = 300.0


def measured_anon_frac(host, name: str) -> float:
    """Anon share of the workload's resident + offloaded memory."""
    cg = host.mm.cgroup(name)
    anon = cg.anon_bytes + cg.offloaded_bytes()
    total = anon + cg.file_bytes
    return anon / total if total else 0.0


def run_experiment():
    results = {}
    for domain in DOMAINS:
        profile = (
            TAX_PROFILES[domain]
            if domain in TAX_PROFILES
            else APP_CATALOG[domain]
        )
        host = bench_host(backend=None)
        # Figure 4 characterises allocated memory: file sets sit in the
        # page cache, so preload them for the measurement.
        host.add_workload(
            Workload, profile=preloaded(profile), name="app",
            size_scale=0.04,
        )
        host.run(DURATION_S)
        results[domain] = measured_anon_frac(host, "app")
    return results


def test_fig04_anon_file(benchmark):
    measured = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    declared = {
        d: (
            TAX_PROFILES[d].anon_frac
            if d in TAX_PROFILES
            else APP_CATALOG[d].anon_frac
        )
        for d in DOMAINS
    }
    rows = [
        (d, 100 * measured[d], 100 * (1 - measured[d]),
         100 * declared[d])
        for d in DOMAINS
    ]
    print_figure(
        "Figure 4 — anonymous vs file-backed memory (%)",
        ["domain", "anon (measured)", "file (measured)",
         "anon (declared)"],
        rows,
    )

    # Measured splits track the declared profiles.
    for domain in DOMAINS:
        assert measured[domain] == pytest.approx(
            declared[domain], abs=0.10
        ), domain
    # The split "varies wildly": >40-point spread across domains.
    values = list(measured.values())
    assert max(values) - min(values) > 0.40
    # Cache is anon-heavy; Video and datacenter tax are file-heavy.
    assert measured["Cache"] > 0.7
    assert measured["Video"] < 0.5
    assert measured["Datacenter Tax"] < 0.5
